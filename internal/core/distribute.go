package core

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/affinity"
	"repro/internal/poly"
	"repro/internal/tags"
	"repro/internal/topology"
)

// Options tunes the Fig 6 algorithm.
type Options struct {
	// BalanceThreshold is the maximum tolerable imbalance in iteration
	// counts across clusters, as a fraction of the ideal cluster size.
	// The paper uses 10% (§4.2). Zero selects the default.
	BalanceThreshold float64
	// ConservativeDeps selects the first §3.5.2 extension: groups connected
	// by dependences are clustered atomically (the "infinite edge weight"
	// formulation), so no inter-core synchronization is needed. Requires
	// Deps to be set.
	ConservativeDeps bool
	// Deps is the group dependence graph; may be nil for fully parallel
	// loops.
	Deps *affinity.Digraph
	// SelfDep flags input groups that carry dependences *between their own
	// iterations* (deps.Analyze reports them); such groups may still be
	// split for load balance, but their pieces must preserve program order,
	// which LiftDeps enforces via the SplitPrec pairs.
	SelfDep []bool

	// Ablation switches (for the design-choice studies; keep zero for the
	// paper-faithful algorithm):

	// NoMergeCap disables the cluster-size cap during agglomerative
	// merging, reverting to unconstrained max-dot merging (which tends to
	// snowball one giant cluster at tree nodes with degree > 2).
	NoMergeCap bool
	// NoPolish disables the post-threshold balance polish, leaving the
	// full slack the balance threshold tolerates.
	NoPolish bool
}

// DefaultBalanceThreshold is the paper's experimental setting.
const DefaultBalanceThreshold = 0.10

func (o Options) threshold() float64 {
	if o.BalanceThreshold <= 0 {
		return DefaultBalanceThreshold
	}
	return o.BalanceThreshold
}

// Result is the outcome of distribution: the final iteration groups (splits
// performed by load balancing create new groups) and their core assignment.
type Result struct {
	// Groups are the final groups with dense IDs matching slice positions.
	Groups []*tags.Group
	// Origin maps each final group to the input group it derives from.
	Origin []int
	// PerCore lists, per core, the final group IDs assigned to it
	// (unscheduled; ordering is the Fig 7 scheduler's job).
	PerCore [][]int
	// SplitPrec records precedence pairs (a, b) between split siblings:
	// group a holds earlier iterations of the same original group than b,
	// so when the original group participates in dependences, a must not
	// run after b's dependents. The scheduler folds these into its graph.
	SplitPrec [][2]int
	// SelfDep (indexed by *original* group id) flags groups whose own
	// iterations depend on each other; copied from Options.SelfDep.
	SelfDep []bool
	// Machine is the topology the distribution targeted.
	Machine *topology.Machine
}

// CoreOf returns the core a final group was assigned to, or -1.
func (r *Result) CoreOf(group int) int {
	for c, gs := range r.PerCore {
		for _, g := range gs {
			if g == group {
				return c
			}
		}
	}
	return -1
}

// unit is the atom the balancer moves: normally one group; in conservative
// dependence mode a whole dependence-connected component (atomic: cannot be
// split or separated).
type unit struct {
	groups []int // final group ids
	tag    tags.Tag
	size   int
	atomic bool
}

// cluster is a set of units plus cached aggregate tag and size.
type cluster struct {
	units []*unit
	tag   tags.Tag
	size  int
	// repr is the smallest group id in the cluster; merge ties prefer
	// program-adjacent clusters (close reprs), which keeps regular kernels'
	// contiguity when tags give no signal.
	repr int
}

func newCluster(width int) *cluster { return &cluster{tag: tags.NewTag(width), repr: 1 << 30} }

func (c *cluster) add(u *unit) {
	c.units = append(c.units, u)
	c.tag.OrInPlace(u.tag)
	c.size += u.size
	for _, g := range u.groups {
		if g < c.repr {
			c.repr = g
		}
	}
}

// recompute rebuilds tag, size and repr after unit removal.
func (c *cluster) recompute(width int) {
	c.tag = tags.NewTag(width)
	c.size = 0
	c.repr = 1 << 30
	for _, u := range c.units {
		c.tag.OrInPlace(u.tag)
		c.size += u.size
		for _, g := range u.groups {
			if g < c.repr {
				c.repr = g
			}
		}
	}
}

func (c *cluster) removeUnit(i int) *unit {
	u := c.units[i]
	c.units = append(c.units[:i], c.units[i+1:]...)
	return u
}

// distributor carries the mutable state of one Distribute run.
type distributor struct {
	groups    []*tags.Group
	origin    []int
	splitPrec [][2]int
	width     int
	opt       Options
	// idealPerCore is the global fair share of iterations per core; the
	// balance limits of every tree level derive from it so imbalance does
	// not compound as the recursion descends (the threshold stays a bound
	// on the final *per-core* imbalance, which is what the paper's
	// BalanceThreshold — "maximum tolerable imbalance across the iteration
	// counts of different cores" — specifies).
	idealPerCore float64
}

// Distribute runs the Fig 6 algorithm: it descends the machine's cache
// hierarchy tree from the root, clustering and balancing at every level,
// and returns the per-core assignment of iteration groups.
func Distribute(tg *tags.Tagging, m *topology.Machine, opt Options) (*Result, error) {
	if len(tg.Groups) == 0 {
		return nil, fmt.Errorf("core: no iteration groups to distribute")
	}
	if opt.ConservativeDeps && opt.Deps == nil {
		return nil, fmt.Errorf("core: ConservativeDeps requires a dependence graph")
	}
	d := &distributor{width: tg.NumBlocks, opt: opt}
	// Work on copies: load balancing may split groups.
	for i, g := range tg.Groups {
		cp := &tags.Group{ID: i, Tag: g.Tag.Clone(), Iters: append([]poly.Point(nil), g.Iters...)}
		d.groups = append(d.groups, cp)
		d.origin = append(d.origin, i)
	}

	// Build the initial units.
	var units []*unit
	if opt.ConservativeDeps {
		units = d.atomicUnits(opt.Deps)
	} else {
		for i, g := range d.groups {
			units = append(units, &unit{groups: []int{i}, tag: g.Tag.Clone(), size: g.Size()})
		}
	}

	total := 0
	for _, u := range units {
		total += u.size
	}
	d.idealPerCore = float64(total) / float64(m.NumCores())

	perCore := make([][]int, m.NumCores())
	if err := d.descend(m.Root, units, perCore); err != nil {
		return nil, err
	}
	return &Result{
		Groups:    d.groups,
		Origin:    d.origin,
		PerCore:   perCore,
		SplitPrec: d.splitPrec,
		SelfDep:   opt.SelfDep,
		Machine:   m,
	}, nil
}

// descend performs clustering and load balancing at node, then recurses
// into each child with its cluster.
func (d *distributor) descend(node *topology.Node, units []*unit, perCore [][]int) error {
	if node.IsLeaf() {
		for _, u := range units {
			perCore[node.CoreID] = append(perCore[node.CoreID], u.groups...)
		}
		return nil
	}
	k := node.Degree()
	clusters, err := d.clusterLevel(units, k)
	if err != nil {
		return fmt.Errorf("core: at %s: %w", node.Label(), err)
	}
	// Each child's target is its global fair share: ideal-per-core times
	// the number of cores in its subtree.
	targets := make([]float64, k)
	for i, child := range node.Children {
		targets[i] = d.idealPerCore * float64(len(child.Cores()))
	}
	// Match bigger clusters to children with more cores (identity when the
	// tree is symmetric, which all paper machines are).
	matchClustersToTargets(clusters, targets)
	d.balance(clusters, targets)
	for i, child := range node.Children {
		// Inside the child subtree each unit moves alone again
		// ("NCS = NCS + {{θa} ∀θa ∈ c_ap}"), except atomic units which stay
		// fused all the way down to a single core.
		next := append([]*unit(nil), clusters[i].units...)
		if err := d.descend(child, next, perCore); err != nil {
			return err
		}
	}
	return nil
}

// matchClustersToTargets permutes clusters in place so cluster sizes align
// with target sizes (largest cluster to largest target). No-op for uniform
// targets.
func matchClustersToTargets(cs []*cluster, targets []float64) {
	uniform := true
	for i := 1; i < len(targets); i++ {
		if targets[i] != targets[0] {
			uniform = false
			break
		}
	}
	if uniform {
		return
	}
	csIdx := make([]int, len(cs))
	tgIdx := make([]int, len(targets))
	for i := range csIdx {
		csIdx[i], tgIdx[i] = i, i
	}
	sort.Slice(csIdx, func(a, b int) bool { return cs[csIdx[a]].size > cs[csIdx[b]].size })
	sort.Slice(tgIdx, func(a, b int) bool { return targets[tgIdx[a]] > targets[tgIdx[b]] })
	out := make([]*cluster, len(cs))
	for r := range csIdx {
		out[tgIdx[r]] = cs[csIdx[r]]
	}
	copy(cs, out)
}

// clusterLevel agglomeratively merges units into exactly k clusters:
// repeatedly merge the cluster pair with the maximum tag dot product; if
// there are fewer clusters than k, split the largest until counts match.
func (d *distributor) clusterLevel(units []*unit, k int) ([]*cluster, error) {
	if k <= 0 {
		return nil, fmt.Errorf("need positive child count, got %d", k)
	}
	var cs []*cluster
	for _, u := range units {
		c := newCluster(d.width)
		c.add(u)
		cs = append(cs, c)
	}
	cs = mergeToK(cs, k, d.width, d.opt.NoMergeCap)
	// Split phase: too few clusters for the child count (including the
	// degenerate case of a subtree that received nothing at all).
	for len(cs) < k {
		if len(cs) == 0 {
			cs = append(cs, newCluster(d.width))
			continue
		}
		// Split the largest cluster.
		li := 0
		for i := range cs {
			if cs[i].size > cs[li].size {
				li = i
			}
		}
		nc, err := d.splitCluster(cs[li])
		if err != nil {
			// Nothing left to split (e.g. fewer iterations than cores):
			// pad with empty clusters so every child receives a cluster.
			cs = append(cs, newCluster(d.width))
			continue
		}
		cs = append(cs, nc)
	}
	return cs, nil
}

// splitCluster breaks a cluster in two. Multi-unit clusters move half their
// units (by size) to the new cluster; single-unit clusters split the unit's
// group itself when allowed.
func (d *distributor) splitCluster(c *cluster) (*cluster, error) {
	if len(c.units) > 1 {
		// Move smallest units until the new cluster holds ~half the size.
		sort.Slice(c.units, func(i, j int) bool { return c.units[i].size > c.units[j].size })
		nc := newCluster(d.width)
		for len(c.units) > 1 && nc.size < c.size/2 {
			u := c.removeUnit(len(c.units) - 1)
			nc.add(u)
			c.size -= u.size
		}
		c.recompute(d.width)
		if len(nc.units) == 0 {
			return nil, fmt.Errorf("cluster split produced nothing")
		}
		return nc, nil
	}
	if len(c.units) == 1 {
		u := c.units[0]
		if u.atomic || len(u.groups) != 1 {
			return nil, fmt.Errorf("cannot split atomic unit")
		}
		g := d.groups[u.groups[0]]
		if g.Size() < 2 {
			return nil, fmt.Errorf("group too small to split")
		}
		a, b := d.splitGroup(u.groups[0], g.Size()/2)
		// Donor cluster keeps the first half.
		u.groups = []int{a}
		u.size = d.groups[a].Size()
		c.recompute(d.width)
		nc := newCluster(d.width)
		nc.add(&unit{groups: []int{b}, tag: d.groups[b].Tag.Clone(), size: d.groups[b].Size()})
		return nc, nil
	}
	return nil, fmt.Errorf("empty cluster")
}

// splitGroup splits final group id at 'want' iterations, reusing the id for
// the first part and appending the second; returns both ids and records the
// precedence pair.
func (d *distributor) splitGroup(id, want int) (int, int) {
	g := d.groups[id]
	a, b := tags.SplitGroup(g, want, id, len(d.groups))
	d.groups[id] = a
	d.groups = append(d.groups, b)
	d.origin = append(d.origin, d.origin[id])
	d.splitPrec = append(d.splitPrec, [2]int{id, b.ID})
	return a.ID, b.ID
}

// mergeToK agglomeratively merges clusters down to k, always fusing the
// pair with the maximum tag dot product. A lazy max-heap keeps the pair
// selection near O(n² log n) instead of the naive O(n³) rescan.
//
// Unconstrained max-dot merging snowballs: the first big cluster's OR tag
// overlaps everything and keeps winning merges, leaving one giant cluster
// plus crumbs — which the load balancer must then shred, breaking exactly
// the sharing the clustering found. A size cap (no merge may exceed ~1.25×
// the ideal cluster size) keeps the k clusters comparable while still
// maximizing sharing; capped-out pairs are retried only when nothing else
// remains.
func mergeToK(cs []*cluster, k, width int, noCap bool) []*cluster {
	if len(cs) <= k {
		return cs
	}
	total := 0
	for _, c := range cs {
		total += c.size
	}
	sizeCap := total // no cap when k == 1
	if k > 1 && !noCap {
		sizeCap = total*5/(4*k) + 1 // 1.25 × ideal
	}
	alive := make(map[*cluster]bool, len(cs))
	for _, c := range cs {
		alive[c] = true
	}
	h := &pairHeap{}
	push := func(a, b *cluster) {
		heap.Push(h, pairEntry{dot: a.tag.Dot(b.tag), a: a, b: b})
	}
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			push(cs[i], cs[j])
		}
	}
	live := len(cs)
	capped := true // whether the size cap is currently enforced
	var deferred []pairEntry
	for live > k {
		var best pairEntry
		found := false
		for h.Len() > 0 {
			best = heap.Pop(h).(pairEntry)
			if !alive[best.a] || !alive[best.b] {
				continue
			}
			if capped && best.a.size+best.b.size > sizeCap {
				deferred = append(deferred, best)
				continue
			}
			found = true
			break
		}
		if !found {
			if capped && len(deferred) > 0 {
				// Nothing fits under the cap; lift it and retry the
				// deferred pairs (still max-dot first via the heap).
				capped = false
				for _, p := range deferred {
					heap.Push(h, p)
				}
				deferred = nil
				continue
			}
			break
		}
		// Fuse b into a; b dies.
		for _, u := range best.b.units {
			best.a.add(u)
		}
		delete(alive, best.b)
		live--
		if live <= k {
			break
		}
		// Refresh pairs involving the fused cluster, iterating the stable
		// slice (not the map) so runs are deterministic.
		for _, c := range cs {
			if alive[c] && c != best.a {
				push(best.a, c)
			}
		}
	}
	var out []*cluster
	for _, c := range cs {
		if alive[c] {
			out = append(out, c)
		}
	}
	return out
}

// pairEntry is a candidate merge in the agglomerative clustering heap.
type pairEntry struct {
	dot  int
	a, b *cluster
}

// pairHeap is a max-heap of merge candidates by dot product; ties prefer
// program-adjacent clusters (smallest representative-ID distance), then
// smaller combined size — both deterministic.
type pairHeap []pairEntry

func (h pairHeap) Len() int { return len(h) }
func (h pairHeap) Less(i, j int) bool {
	if h[i].dot != h[j].dot {
		return h[i].dot > h[j].dot
	}
	si := h[i].a.size + h[i].b.size
	sj := h[j].a.size + h[j].b.size
	if si != sj {
		return si < sj
	}
	// Final tie: program adjacency (smallest representative-ID distance).
	di := h[i].a.repr - h[i].b.repr
	if di < 0 {
		di = -di
	}
	dj := h[j].a.repr - h[j].b.repr
	if dj < 0 {
		dj = -dj
	}
	return di < dj
}
func (h pairHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x any)   { *h = append(*h, x.(pairEntry)) }
func (h *pairHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// balance implements Fig 6's greedy load-balancing step, with limits
// derived from each cluster's target (global fair share): while some
// cluster exceeds its upper limit, evict the best-matching unit (maximum
// tag dot product with the recipient) from it to a cluster below its lower
// limit, splitting a group when no whole unit fits the limits.
func (d *distributor) balance(cs []*cluster, targets []float64) {
	if len(cs) < 2 {
		return
	}
	t := d.opt.threshold()
	up := make([]int, len(cs))
	low := make([]int, len(cs))
	total := 0
	for i := range cs {
		up[i] = int(targets[i] + t*targets[i])
		low[i] = int(targets[i] - t*targets[i])
		if low[i] < 0 {
			low[i] = 0
		}
		total += cs[i].size
	}

	guard := 4 * (total + len(cs)) // generous progress bound
	for iter := 0; iter < guard; iter++ {
		// Rebalance while any cluster is over its upper limit *or* under
		// its lower limit (both violate the per-core imbalance bound).
		overUp, underLow := -1, -1
		for i, c := range cs {
			if c.size > up[i] && (overUp < 0 || c.size-up[i] > cs[overUp].size-up[overUp]) {
				overUp = i
			}
			if c.size < low[i] && (underLow < 0 || c.size-low[i] < cs[underLow].size-low[underLow]) {
				underLow = i
			}
		}
		if overUp < 0 && underLow < 0 {
			break // all within limits; polish below
		}
		// Donor: the over-limit cluster, or else the most over-target one.
		donor := overUp
		if donor < 0 {
			for i, c := range cs {
				if i == underLow {
					continue
				}
				if donor < 0 || float64(c.size)-targets[i] > float64(cs[donor].size)-targets[donor] {
					donor = i
				}
			}
		}
		// Recipient: the starving cluster, or else the most under-target one.
		recipient := underLow
		if recipient < 0 || recipient == donor {
			recipient = -1
			for i, c := range cs {
				if i == donor {
					continue
				}
				if recipient < 0 || float64(c.size)-targets[i] < float64(cs[recipient].size)-targets[recipient] {
					recipient = i
				}
			}
		}
		if donor < 0 || recipient < 0 || donor == recipient {
			break
		}
		if !d.evict(cs[donor], cs[recipient], low[donor], up[recipient]) {
			break // no progress possible
		}
	}
	if !d.opt.NoPolish {
		d.polish(cs, targets, guard)
	}
}

// polish runs after the threshold phase: whole-unit moves (never splits,
// so it cannot fragment groups) from the most over-target cluster to the
// most under-target one, as long as each move strictly reduces the pair's
// peak deviation. The threshold bounds the slack the algorithm *tolerates*;
// polish removes the part of that slack that costs nothing to remove,
// which matters because the makespan of a parallel loop tracks the largest
// per-core load directly.
func (d *distributor) polish(cs []*cluster, targets []float64, guard int) {
	for iter := 0; iter < guard; iter++ {
		donor, recipient := -1, -1
		for i, c := range cs {
			dev := float64(c.size) - targets[i]
			if donor < 0 || dev > float64(cs[donor].size)-targets[donor] {
				donor = i
			}
			if recipient < 0 || dev < float64(cs[recipient].size)-targets[recipient] {
				recipient = i
			}
		}
		if donor < 0 || recipient < 0 || donor == recipient {
			return
		}
		excess := float64(cs[donor].size) - targets[donor]
		deficit := targets[recipient] - float64(cs[recipient].size)
		if excess <= 0 || deficit <= 0 {
			return
		}
		peak := excess
		if deficit > peak {
			peak = deficit
		}
		bestIdx, bestDot := -1, -1
		for i, u := range cs[donor].units {
			nd := absf(excess - float64(u.size))
			nr := absf(float64(u.size) - deficit)
			if nd >= peak || nr >= peak {
				continue
			}
			dot := u.tag.Dot(cs[recipient].tag)
			if dot > bestDot {
				bestIdx, bestDot = i, dot
			}
		}
		if bestIdx >= 0 {
			u := cs[donor].removeUnit(bestIdx)
			cs[donor].recompute(d.width)
			cs[recipient].add(u)
			continue
		}
		// No whole unit improves the pair. When the residual imbalance is
		// still above 0.2% of the target, split once to shave it off — the
		// makespan of the parallel loop tracks the largest per-core load
		// directly, so this final precision is worth one extra group.
		tol := 0.002 * targets[donor]
		if tol < 1 {
			tol = 1
		}
		if excess <= tol && deficit <= tol {
			return
		}
		give := int(excess)
		if int(deficit) < give {
			give = int(deficit)
		}
		if give < 1 {
			return
		}
		splitIdx, splitDot := -1, -1
		for i, u := range cs[donor].units {
			if u.atomic || len(u.groups) != 1 || d.groups[u.groups[0]].Size() <= give {
				continue
			}
			dot := u.tag.Dot(cs[recipient].tag)
			if dot > splitDot {
				splitIdx, splitDot = i, dot
			}
		}
		if splitIdx < 0 {
			return
		}
		u := cs[donor].units[splitIdx]
		g := d.groups[u.groups[0]]
		a, b := d.splitGroup(u.groups[0], g.Size()-give)
		u.groups = []int{a}
		u.size = d.groups[a].Size()
		cs[donor].recompute(d.width)
		cs[recipient].add(&unit{groups: []int{b}, tag: d.groups[b].Tag.Clone(), size: d.groups[b].Size()})
	}
}

// absf returns |x|.
func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// evict moves one unit (or a split piece of one) from donor to recipient,
// preferring the whole unit with maximum tag affinity to the recipient that
// keeps the donor above donorLow and the recipient below recipUp. Returns
// false when no move is possible.
func (d *distributor) evict(donor, recipient *cluster, donorLow, recipUp int) bool {
	bestIdx, bestDot := -1, -1
	for i, u := range donor.units {
		if donor.size-u.size < donorLow || recipient.size+u.size > recipUp {
			continue
		}
		dot := u.tag.Dot(recipient.tag)
		if dot > bestDot {
			bestIdx, bestDot = i, dot
		}
	}
	if bestIdx >= 0 {
		u := donor.removeUnit(bestIdx)
		donor.recompute(d.width)
		recipient.add(u)
		return true
	}
	// No whole unit fits: split one (Fig 6's "if no such node exists,
	// split θ_a ... and evict as described above").
	give := donor.size - donorLow
	if room := recipUp - recipient.size; room < give {
		give = room
	}
	// Aim for the midpoint of what the donor can shed and what the
	// recipient can take, but move at least one iteration.
	if give <= 0 {
		give = 1
	}
	// Choose the splittable unit with max affinity to the recipient.
	bestIdx, bestDot = -1, -1
	for i, u := range donor.units {
		if u.atomic || len(u.groups) != 1 || d.groups[u.groups[0]].Size() <= 1 {
			continue
		}
		dot := u.tag.Dot(recipient.tag)
		if dot > bestDot {
			bestIdx, bestDot = i, dot
		}
	}
	if bestIdx < 0 {
		return false
	}
	u := donor.units[bestIdx]
	g := d.groups[u.groups[0]]
	if give >= g.Size() {
		give = g.Size() - 1
	}
	keep := g.Size() - give
	a, b := d.splitGroup(u.groups[0], keep)
	u.groups = []int{a}
	u.size = d.groups[a].Size()
	donor.recompute(d.width)
	recipient.add(&unit{groups: []int{b}, tag: d.groups[b].Tag.Clone(), size: d.groups[b].Size()})
	return true
}

// atomicUnits unions dependence-connected groups into atomic units — the
// conservative §3.5.2 mode.
func (d *distributor) atomicUnits(dg *affinity.Digraph) []*unit {
	parent := make([]int, len(d.groups))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for u := 0; u < dg.N(); u++ {
		for _, v := range dg.Succ(u) {
			union(u, v)
		}
	}
	byRoot := make(map[int]*unit)
	var units []*unit
	for i, g := range d.groups {
		r := find(i)
		u, ok := byRoot[r]
		if !ok {
			u = &unit{tag: tags.NewTag(d.width)}
			byRoot[r] = u
			units = append(units, u)
		}
		u.groups = append(u.groups, i)
		u.tag.OrInPlace(g.Tag)
		u.size += g.Size()
	}
	for _, u := range units {
		u.atomic = len(u.groups) > 1
	}
	return units
}
