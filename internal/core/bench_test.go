package core

import (
	"testing"

	"repro/internal/tags"
	"repro/internal/topology"
	"repro/internal/workloads"
)

func benchDistribute(b *testing.B, name string, maxGroups int) {
	k, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	layout := k.Layout(2048)
	tg := tags.Coarsen(tags.ComputeNest(k.Nest, k.Refs, layout), maxGroups)
	m := topology.Dunnington()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Distribute(tg, m, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributeGalgel768(b *testing.B) { benchDistribute(b, "galgel", 768) }
func BenchmarkDistributeGalgel256(b *testing.B) { benchDistribute(b, "galgel", 256) }
func BenchmarkDistributeSp(b *testing.B)        { benchDistribute(b, "sp", 768) }
