package core

import "repro/internal/affinity"

// LiftDeps translates a dependence graph over the *original* iteration
// groups into one over the *final* (post-split) groups of a distribution
// result. Every original edge a→b becomes edges between all final groups
// originating from a and b, and the split-precedence pairs (earlier half
// before later half of the same original group) are added so program order
// within a split group is preserved whenever it carried dependences.
func LiftDeps(res *Result, orig *affinity.Digraph) *affinity.Digraph {
	out := affinity.NewDigraph(len(res.Groups))
	if orig == nil && res.SelfDep == nil {
		// Fully parallel loop: split pieces carry no ordering constraint.
		return out
	}
	if orig != nil {
		byOrigin := make(map[int][]int)
		for f, o := range res.Origin {
			byOrigin[o] = append(byOrigin[o], f)
		}
		for a := 0; a < orig.N(); a++ {
			for _, b := range orig.Succ(a) {
				for _, fa := range byOrigin[a] {
					for _, fb := range byOrigin[b] {
						out.AddEdge(fa, fb)
					}
				}
			}
		}
	}
	// Split pieces of a dependence-carrying group must preserve program
	// order among themselves (an iteration-level dependence inside the
	// original group may cross the split point).
	involved := func(o int) bool {
		if res.SelfDep != nil && o < len(res.SelfDep) && res.SelfDep[o] {
			return true
		}
		return orig != nil && o < orig.N() && (len(orig.Succ(o)) > 0 || len(orig.Pred(o)) > 0)
	}
	for _, p := range res.SplitPrec {
		if involved(res.Origin[p[0]]) {
			out.AddEdge(p[0], p[1])
		}
	}
	return out
}
