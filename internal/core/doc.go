// Package core implements the paper's primary contribution, part 1: the
// cache-topology-aware iteration distribution algorithm of Figure 6
// (Kandemir et al., PLDI 2010).
//
// The algorithm takes the iteration groups produced by tagging (§3.3), the
// weighted group-affinity graph (edge weight = shared data blocks), and the
// cache hierarchy tree of the target machine, and descends the tree level
// by level. At each tree node it agglomeratively merges group clusters —
// always the pair with the maximum tag dot product, i.e. maximum data-block
// sharing — until the number of clusters equals the node's child count,
// splits oversized clusters when there are too few, then greedily
// rebalances cluster sizes (iteration counts) to within a tunable balance
// threshold, evicting the donor group whose tag best matches the recipient
// cluster. When it reaches the leaves, each core holds one cluster of
// iteration groups.
//
// Two dependence modes of §3.5.2 are supported: the conservative mode pins
// dependence-connected groups together (the "infinite edge weight" option),
// and the synchronization mode leaves dependences to the Fig 7 scheduler.
package core
