package core

import (
	"testing"

	"repro/internal/affinity"
	"repro/internal/deps"
	"repro/internal/poly"
	"repro/internal/tags"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// tagKernel runs the tagging front end on a named workload, coarsening to
// the pipeline's default granularity as repro.Evaluate would.
func tagKernel(t *testing.T, name string, blockBytes int64) (*workloads.Kernel, *tags.Tagging) {
	t.Helper()
	k, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	layout := k.Layout(blockBytes)
	tg := tags.ComputeNest(k.Nest, k.Refs, layout)
	return k, tags.Coarsen(tg, 768)
}

// checkCoverage verifies the fundamental distribution invariant: every
// input iteration appears on exactly one core, exactly once.
func checkCoverage(t *testing.T, res *Result, totalIters int) {
	t.Helper()
	seen := make(map[string]bool)
	count := 0
	assigned := make(map[int]bool)
	for _, gs := range res.PerCore {
		for _, gid := range gs {
			if assigned[gid] {
				t.Fatalf("group %d assigned to two cores", gid)
			}
			assigned[gid] = true
			for _, p := range res.Groups[gid].Iters {
				k := p.String()
				if seen[k] {
					t.Fatalf("iteration %v scheduled twice", p)
				}
				seen[k] = true
				count++
			}
		}
	}
	if count != totalIters {
		t.Fatalf("covered %d iterations, want %d", count, totalIters)
	}
}

func TestDistributeFig5OnDunnington(t *testing.T) {
	_, tg := tagKernel(t, "fig5", 2048)
	m := topology.Dunnington()
	res, err := Distribute(tg, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 12 {
		t.Fatalf("PerCore has %d entries", len(res.PerCore))
	}
	checkCoverage(t, res, tg.TotalIters)
}

func TestDistributeBalance(t *testing.T) {
	for _, name := range []string{"fig5", "sp", "povray"} {
		k, tg := tagKernel(t, name, 2048)
		m := topology.Dunnington()
		res, err := Distribute(tg, m, Options{BalanceThreshold: 0.10})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkCoverage(t, res, tg.TotalIters)
		ideal := float64(k.Iterations()) / float64(m.NumCores())
		for c, gs := range res.PerCore {
			n := 0
			for _, g := range gs {
				n += res.Groups[g].Size()
			}
			if dev := float64(n) - ideal; dev > 0.12*ideal || dev < -0.12*ideal {
				t.Errorf("%s core %d has %d iters, ideal %.0f (dev %.1f%%)",
					name, c, n, ideal, 100*dev/ideal)
			}
		}
	}
}

func TestDistributeAllMachines(t *testing.T) {
	_, tg := tagKernel(t, "fig5", 2048)
	for _, m := range topology.All() {
		res, err := Distribute(tg, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		checkCoverage(t, res, tg.TotalIters)
		if len(res.PerCore) != m.NumCores() {
			t.Fatalf("%s: %d cores in result", m.Name, len(res.PerCore))
		}
	}
}

func TestDistributeFewerGroupsThanCores(t *testing.T) {
	// A tiny loop with a single group must still be spread by splitting.
	a := poly.NewArray("A", 64)
	nest := poly.NewNest(poly.RectLoop("j", 0, 63))
	refs := []*poly.Ref{poly.NewRef(a, poly.Read, poly.Var(0, 1))}
	layout := poly.NewLayout(1024, a) // one block: one group
	tg := tags.ComputeNest(nest, refs, layout)
	if len(tg.Groups) != 1 {
		t.Fatalf("expected a single group, got %d", len(tg.Groups))
	}
	m := topology.Dunnington()
	res, err := Distribute(tg, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, res, 64)
	// Splitting must have created pieces on several cores.
	busy := 0
	for _, gs := range res.PerCore {
		if len(gs) > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d cores busy after splitting", busy)
	}
}

func TestDistributeFewerIterationsThanCores(t *testing.T) {
	a := poly.NewArray("A", 4)
	nest := poly.NewNest(poly.RectLoop("j", 0, 3))
	refs := []*poly.Ref{poly.NewRef(a, poly.Read, poly.Var(0, 1))}
	layout := poly.NewLayout(32, a)
	tg := tags.ComputeNest(nest, refs, layout)
	m := topology.Dunnington()
	res, err := Distribute(tg, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, res, 4)
}

func TestDistributeEmptyErrors(t *testing.T) {
	if _, err := Distribute(&tags.Tagging{}, topology.Dunnington(), Options{}); err == nil {
		t.Fatal("empty tagging should error")
	}
}

func TestDistributeSharersColocated(t *testing.T) {
	// Mirror kernel: iterations j and N-1-j share both data blocks. The
	// whole point of the algorithm is that sharers end up with affinity:
	// count the fraction of mirror pairs assigned to the same core or to
	// cores sharing a cache — it must far exceed the contiguous baseline.
	const n = 4096
	a := poly.NewArray("A", n).WithElemSize(64)
	b := poly.NewArray("B", n).WithElemSize(64)
	nest := poly.NewNest(poly.RectLoop("j", 0, n-1))
	refs := []*poly.Ref{
		poly.NewRef(a, poly.Read, poly.Var(0, 1)),
		poly.NewRef(a, poly.Read, poly.Var(0, 1).Scale(-1).AddConst(n-1)),
		poly.NewRef(b, poly.Write, poly.Var(0, 1)),
	}
	layout := poly.NewLayout(2048, a, b)
	tg := tags.ComputeNest(nest, refs, layout)
	m := topology.Dunnington()
	res, err := Distribute(tg, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	coreOfIter := make(map[int64]int)
	for c, gs := range res.PerCore {
		for _, g := range gs {
			for _, p := range res.Groups[g].Iters {
				coreOfIter[p[0]] = c
			}
		}
	}
	sameDomain := 0
	for j := int64(0); j < n/2; j++ {
		c1, c2 := coreOfIter[j], coreOfIter[n-1-j]
		if c1 == c2 || m.SharedLevel(c1, c2) > 0 {
			sameDomain++
		}
	}
	frac := float64(sameDomain) / float64(n/2)
	if frac < 0.8 {
		t.Fatalf("only %.0f%% of mirror pairs share a cache domain", 100*frac)
	}
}

func TestDistributeConservativeDeps(t *testing.T) {
	k, err := workloads.ByName("wavefront")
	if err != nil {
		t.Fatal(err)
	}
	layout := k.Layout(2048)
	iters := k.Nest.Points()
	tg := tags.Compute(iters, k.Refs, layout)
	dg, selfDep := deps.Analyze(iters, tg)
	groups, dag, self := deps.CollapseCycles(tg.Groups, dg, selfDep)
	work := &tags.Tagging{Groups: groups, Layout: layout, Refs: k.Refs, NumBlocks: tg.NumBlocks, TotalIters: tg.TotalIters}
	m := topology.Dunnington()
	res, err := Distribute(work, m, Options{ConservativeDeps: true, Deps: dag, SelfDep: self})
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, res, tg.TotalIters)
	// Conservative mode: all dependence-connected groups on one core.
	coreOf := make(map[int]int)
	for c, gs := range res.PerCore {
		for _, g := range gs {
			coreOf[g] = c
		}
	}
	for u := 0; u < dag.N(); u++ {
		for _, v := range dag.Succ(u) {
			if coreOf[u] != coreOf[v] {
				t.Fatalf("dependent groups %d and %d on cores %d and %d in conservative mode",
					u, v, coreOf[u], coreOf[v])
			}
		}
	}
}

func TestDistributeConservativeWithoutDepsErrors(t *testing.T) {
	_, tg := tagKernel(t, "fig5", 2048)
	if _, err := Distribute(tg, topology.Dunnington(), Options{ConservativeDeps: true}); err == nil {
		t.Fatal("ConservativeDeps without Deps should error")
	}
}

func TestDistributeDeterminism(t *testing.T) {
	_, tg := tagKernel(t, "povray", 2048)
	m := topology.Dunnington()
	r1, err := Distribute(tg, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Distribute(tg, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Groups) != len(r2.Groups) {
		t.Fatalf("group counts differ: %d vs %d", len(r1.Groups), len(r2.Groups))
	}
	for c := range r1.PerCore {
		if len(r1.PerCore[c]) != len(r2.PerCore[c]) {
			t.Fatalf("core %d group counts differ", c)
		}
		for i := range r1.PerCore[c] {
			if r1.PerCore[c][i] != r2.PerCore[c][i] {
				t.Fatalf("core %d assignment differs at %d", c, i)
			}
		}
	}
}

func TestSplitPrecRecorded(t *testing.T) {
	// Single-group input forces splits; each split must be recorded.
	a := poly.NewArray("A", 1024)
	nest := poly.NewNest(poly.RectLoop("j", 0, 1023))
	refs := []*poly.Ref{poly.NewRef(a, poly.Read, poly.Var(0, 1))}
	layout := poly.NewLayout(8192, a)
	tg := tags.ComputeNest(nest, refs, layout)
	res, err := Distribute(tg, topology.Dunnington(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) <= len(tg.Groups) {
		t.Fatal("expected splits")
	}
	if len(res.SplitPrec) != len(res.Groups)-len(tg.Groups) {
		t.Fatalf("%d split pairs for %d new groups", len(res.SplitPrec), len(res.Groups)-len(tg.Groups))
	}
	for _, pr := range res.SplitPrec {
		a, b := res.Groups[pr[0]], res.Groups[pr[1]]
		if res.Origin[pr[0]] != res.Origin[pr[1]] {
			t.Fatal("split pair with different origins")
		}
		if !a.Iters[len(a.Iters)-1].Less(b.Iters[0]) {
			t.Fatal("split precedence against program order")
		}
	}
}

func TestCoreOf(t *testing.T) {
	_, tg := tagKernel(t, "fig5", 2048)
	res, err := Distribute(tg, topology.Dunnington(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c, gs := range res.PerCore {
		for _, g := range gs {
			if got := res.CoreOf(g); got != c {
				t.Fatalf("CoreOf(%d) = %d, want %d", g, got, c)
			}
		}
	}
	if res.CoreOf(1<<20) != -1 {
		t.Fatal("CoreOf of unknown group should be -1")
	}
}

func TestLiftDepsNil(t *testing.T) {
	_, tg := tagKernel(t, "fig5", 2048)
	res, err := Distribute(tg, topology.Dunnington(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	lifted := LiftDeps(res, nil)
	if lifted.NumEdges() != 0 {
		t.Fatal("nil deps should lift to an empty graph")
	}
}

func TestLiftDepsEdges(t *testing.T) {
	_, tg := tagKernel(t, "fig5", 2048)
	orig := affinity.NewDigraph(len(tg.Groups))
	orig.AddEdge(0, 1)
	res, err := Distribute(tg, topology.Dunnington(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	lifted := LiftDeps(res, orig)
	// Every final group originating from 0 must precede every final group
	// originating from 1.
	for fa, oa := range res.Origin {
		if oa != 0 {
			continue
		}
		for fb, ob := range res.Origin {
			if ob != 1 {
				continue
			}
			if !lifted.HasEdge(fa, fb) {
				t.Fatalf("lifted edge %d->%d missing", fa, fb)
			}
		}
	}
}
