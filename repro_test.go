package repro_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/schedule"
)

func TestEvaluateAllSchemesFig5(t *testing.T) {
	k := repro.KernelByNameMust("fig5")
	m := repro.Dunnington()
	cfg := repro.DefaultConfig()
	var base uint64
	for _, s := range repro.AllSchemes() {
		run, err := repro.Evaluate(k, m, s, cfg)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if run.Sim.TotalCycles == 0 {
			t.Fatalf("%v: zero cycles", s)
		}
		if run.Sim.Accesses != uint64(k.Accesses()) {
			t.Fatalf("%v simulated %d accesses, kernel has %d", s, run.Sim.Accesses, k.Accesses())
		}
		if s == repro.SchemeBase {
			base = run.Sim.TotalCycles
		}
	}
	_ = base
}

// TestHeadlineOrdering is the paper's central claim at suite level: on
// every commercial machine, averaged over the twelve applications,
// TopologyAware < Base+ < Base. Three representative kernels keep the
// test fast; the full suite runs via cmd/benchtool and the benchmarks.
func TestHeadlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	kernels := []*repro.Kernel{
		repro.KernelByNameMust("applu"),
		repro.KernelByNameMust("galgel"),
		repro.KernelByNameMust("povray"),
	}
	cfg := repro.DefaultConfig()
	for _, m := range []*repro.Machine{repro.Harpertown(), repro.Nehalem(), repro.Dunnington()} {
		var sumBase, sumBP, sumTA float64
		for _, k := range kernels {
			b, err := repro.Evaluate(k, m, repro.SchemeBase, cfg)
			if err != nil {
				t.Fatal(err)
			}
			bp, err := repro.Evaluate(k, m, repro.SchemeBasePlus, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ta, err := repro.Evaluate(k, m, repro.SchemeTopologyAware, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sumBase += 1.0
			sumBP += float64(bp.Sim.TotalCycles) / float64(b.Sim.TotalCycles)
			sumTA += float64(ta.Sim.TotalCycles) / float64(b.Sim.TotalCycles)
		}
		if !(sumTA < sumBP && sumBP <= sumBase) {
			t.Errorf("%s: ordering violated: TA=%.3f Base+=%.3f Base=%.3f",
				m.Name, sumTA/3, sumBP/3, sumBase/3)
		}
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	k := repro.KernelByNameMust("povray")
	m := repro.Dunnington()
	cfg := repro.DefaultConfig()
	r1, err := repro.Evaluate(k, m, repro.SchemeCombined, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := repro.Evaluate(k, m, repro.SchemeCombined, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Sim.TotalCycles != r2.Sim.TotalCycles {
		t.Fatalf("nondeterministic: %d vs %d", r1.Sim.TotalCycles, r2.Sim.TotalCycles)
	}
}

func TestEvaluateWavefrontBothDepModes(t *testing.T) {
	k := repro.KernelByNameMust("wavefront")
	m := repro.Dunnington()
	for _, mode := range []repro.DepsMode{repro.DepsSync, repro.DepsConservative} {
		cfg := repro.DefaultConfig()
		cfg.Deps = mode
		run, err := repro.Evaluate(k, m, repro.SchemeCombined, cfg)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if !run.HasDeps {
			t.Fatalf("mode %v: wavefront not flagged as dependent", mode)
		}
		if err := schedule.Validate(run.Schedule, run.Mapping, nil); err == nil && mode == repro.DepsSync {
			// Validate with nil deps only checks coverage; real dep
			// validation happens inside the pipeline. Here just ensure
			// the schedule exists and covers groups.
			_ = err
		}
		if mode == repro.DepsConservative && run.Sim.Barriers != 0 {
			t.Fatalf("conservative mode charged %d barriers", run.Sim.Barriers)
		}
	}
}

func TestCrossEvaluateFolding(t *testing.T) {
	k := repro.KernelByNameMust("galgel")
	// 12-core Dunnington version on 8-core Nehalem: threads fold.
	run, err := repro.CrossEvaluate(k, repro.Dunnington(), repro.Nehalem(), repro.SchemeCombined, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if run.Machine.Name != "Nehalem" {
		t.Fatal("run not re-homed to the execution machine")
	}
	if run.Sim.Accesses != uint64(k.Accesses()) {
		t.Fatalf("folding lost accesses: %d of %d", run.Sim.Accesses, k.Accesses())
	}
	// 8-core Harpertown version on 12-core Dunnington: 4 cores idle.
	run2, err := repro.CrossEvaluate(k, repro.Harpertown(), repro.Dunnington(), repro.SchemeCombined, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	idle := 0
	for _, acc := range run2.Sim.AccessesPerCore {
		if acc == 0 {
			idle++
		}
	}
	if idle != 4 {
		t.Fatalf("expected 4 idle cores, got %d", idle)
	}
}

func TestCrossEvaluateNativeMatchesEvaluate(t *testing.T) {
	k := repro.KernelByNameMust("fig5")
	m := repro.Dunnington()
	cfg := repro.DefaultConfig()
	a, err := repro.Evaluate(k, m, repro.SchemeCombined, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := repro.CrossEvaluate(k, m, m, repro.SchemeCombined, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sim.TotalCycles != b.Sim.TotalCycles {
		t.Fatalf("native CrossEvaluate differs: %d vs %d", a.Sim.TotalCycles, b.Sim.TotalCycles)
	}
}

func TestCrossEvaluateRejectsBaseline(t *testing.T) {
	k := repro.KernelByNameMust("fig5")
	if _, err := repro.CrossEvaluate(k, repro.Dunnington(), repro.Nehalem(), repro.SchemeBase, repro.DefaultConfig()); err == nil {
		t.Fatal("CrossEvaluate should reject Base")
	}
}

func TestMapViewTruncated(t *testing.T) {
	k := repro.KernelByNameMust("fig5")
	m := repro.ArchI()
	cfg := repro.DefaultConfig()
	view, err := repro.MachineByName("arch-i")
	if err != nil {
		t.Fatal(err)
	}
	// Build the L1+L2 view with the topology package via the public path:
	// the experiments use topology.Truncate; here just check MapView with
	// a same-core-count machine works and a mismatched one errors.
	cfg.MapView = view
	if _, err := repro.Evaluate(k, m, repro.SchemeTopologyAware, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.MapView = repro.Dunnington() // 12 != 16 cores
	if _, err := repro.Evaluate(k, m, repro.SchemeTopologyAware, cfg); err == nil {
		t.Fatal("mismatched MapView accepted")
	}
}

func TestGeneratePerCoreCode(t *testing.T) {
	k := repro.KernelByNameMust("fig5")
	m := repro.Dunnington()
	run, err := repro.Evaluate(k, m, repro.SchemeCombined, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	code := repro.GeneratePerCoreCode(run)
	if len(code) != 12 {
		t.Fatalf("code for %d cores", len(code))
	}
	nonEmpty := 0
	for _, c := range code {
		if strings.Contains(c, "for (") {
			nonEmpty++
		}
	}
	if nonEmpty < 10 {
		t.Fatalf("only %d cores have loop code", nonEmpty)
	}
	// Base has no mapping, so no code.
	baseRun, err := repro.Evaluate(k, m, repro.SchemeBase, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if repro.GeneratePerCoreCode(baseRun) != nil {
		t.Fatal("Base should yield no generated code")
	}
}

func TestSchemeStrings(t *testing.T) {
	names := map[repro.Scheme]string{
		repro.SchemeBase:          "Base",
		repro.SchemeBasePlus:      "Base+",
		repro.SchemeLocal:         "Local",
		repro.SchemeTopologyAware: "TopologyAware",
		repro.SchemeCombined:      "Combined",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestSearchContext(t *testing.T) {
	k := repro.KernelByNameMust("fig5")
	m := repro.Dunnington()
	cfg := repro.DefaultConfig()
	cfg.MaxGroups = 16
	sc, err := repro.NewSearchContext(k, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumGroups() == 0 {
		t.Fatal("no groups")
	}
	seedCost, err := sc.Cost(sc.Seed())
	if err != nil {
		t.Fatal(err)
	}
	if seedCost == 0 {
		t.Fatal("zero cost")
	}
	// Deterministic cost.
	again, err := sc.Cost(sc.Seed())
	if err != nil {
		t.Fatal(err)
	}
	if again != seedCost {
		t.Fatalf("cost not deterministic: %d vs %d", again, seedCost)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := repro.DefaultConfig()
	if cfg.BlockBytes != 2048 || cfg.BalanceThreshold != 0.10 || cfg.Alpha != 0.5 || cfg.Beta != 0.5 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
}

func TestKernelAndMachineLookups(t *testing.T) {
	if len(repro.Kernels()) != 12 {
		t.Fatal("Kernels() should return the twelve")
	}
	if _, err := repro.KernelByName("nope"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := repro.MachineByName("nope"); err == nil {
		t.Fatal("unknown machine accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("KernelByNameMust should panic on unknown names")
		}
	}()
	repro.KernelByNameMust("nope")
}

func TestMultiPassWarmCaches(t *testing.T) {
	k := repro.KernelByNameMust("sp") // small dataset: second pass mostly warm
	m := repro.Dunnington()
	cfg := repro.DefaultConfig()
	one, err := repro.Evaluate(k, m, repro.SchemeBase, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Passes = 2
	two, err := repro.Evaluate(k, m, repro.SchemeBase, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if two.Sim.Accesses != 2*one.Sim.Accesses {
		t.Fatalf("2 passes simulated %d accesses, want %d", two.Sim.Accesses, 2*one.Sim.Accesses)
	}
	// Warm second pass: total memory accesses must be well below double.
	if two.Sim.MemAccesses >= 2*one.Sim.MemAccesses {
		t.Fatalf("second pass not warm: %d vs %d mem accesses", two.Sim.MemAccesses, one.Sim.MemAccesses)
	}
	// And cycles below double the single pass.
	if two.Sim.TotalCycles >= 2*one.Sim.TotalCycles {
		t.Fatalf("second pass not faster: %d vs 2x%d", two.Sim.TotalCycles, one.Sim.TotalCycles)
	}
}

func TestRunSummary(t *testing.T) {
	k := repro.KernelByNameMust("fig5")
	run, err := repro.Evaluate(k, repro.Dunnington(), repro.SchemeCombined, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := run.Summary()
	for _, want := range []string{"fig5", "Dunnington", "Combined", "cycles", "groups"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q: %s", want, s)
		}
	}
}

func TestMapTimeRecorded(t *testing.T) {
	k := repro.KernelByNameMust("fig5")
	run, err := repro.Evaluate(k, repro.Dunnington(), repro.SchemeTopologyAware, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if run.MapTime <= 0 {
		t.Fatal("MapTime not recorded")
	}
}
