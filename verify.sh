#!/bin/sh
# verify.sh — the repo's verification recipe (see ROADMAP.md).
#
#   ./verify.sh          # tier-1: build + full test suite
#   ./verify.sh full     # + go vet, the -race pass over the parallel
#                        #   runner (streamed cells at -j 8) and simulator,
#                        #   and a 10s fuzz smoke of the language front end
#
# Tier-1 includes TestStreamingMatchesMaterialized, the equivalence gate
# between the streaming and materialized trace paths, and the
# fault-isolation suite (panic containment, cancellation, budgets,
# checkpoint/resume) in internal/experiments.
set -e

go build ./...
go test ./...

if [ "$1" = "full" ]; then
	go vet ./...
	go test -race ./internal/experiments/ ./internal/cachesim/
	go test -fuzz=FuzzParse -fuzztime=10s ./internal/lang/
fi
