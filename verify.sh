#!/bin/sh
# verify.sh — the repo's verification recipe (see ROADMAP.md).
#
#   ./verify.sh          # tier-1: build + lint + full test suite
#   ./verify.sh lint     # lint only: gofmt -l, go vet, topovet, and
#                        #   staticcheck when installed
#   ./verify.sh full     # tier-1 + the -race pass over the parallel
#                        #   runner, simulator, oracle and chaos injector,
#                        #   the set-partitioned simulator equivalence
#                        #   suite under -race (workers 2/4/8 byte-
#                        #   identical to sequential, CheckFull),
#                        #   a 10s fuzz smoke of the language front end,
#                        #   a -check=sampled smoke of one Table 2
#                        #   kernel per commercial machine,
#                        #   and the distributed-fabric smoke: fig13
#                        #   sharded across 2 worker processes — clean
#                        #   and under process-level chaos — must render
#                        #   byte-identically to the single-process run
#
# Tier-1 includes TestStreamingMatchesMaterialized (the equivalence gate
# between the streaming and materialized trace paths, now run under
# CheckFull), TestOracleEquivalence (the differential oracle agreeing with
# the production simulator on every Table 2 kernel x Table 1 machine), the
# fault-isolation suite (panic containment, cancellation, budgets,
# checkpoint/resume), the chaos suite (every injected fault class
# detected, healthy cells byte-identical) in internal/experiments, and the
# lint gate below — notably cmd/topovet, the repo's own analyzer suite
# (DESIGN.md "Static invariants"), which must report zero unsuppressed
# findings over the whole tree.
set -e

lint() {
	# gofmt: no unformatted files anywhere, analyzer fixtures included.
	unformatted=$(gofmt -l .)
	if [ -n "$unformatted" ]; then
		echo "gofmt: unformatted files:" >&2
		echo "$unformatted" >&2
		exit 1
	fi
	go vet ./...
	# topovet: determinism, memo-key completeness, context threading,
	# fault containment, scratch-buffer escape.
	go run ./cmd/topovet ./...
	# staticcheck is optional locally; CI pins and runs it always.
	if command -v staticcheck >/dev/null 2>&1; then
		staticcheck ./...
	fi
}

if [ "$1" = "lint" ]; then
	lint
	exit 0
fi

go build ./...
lint
go test ./...

if [ "$1" = "full" ]; then
	go test -race ./internal/experiments/ ./internal/cachesim/ ./internal/oracle/ ./internal/chaos/
	# Intra-cell parallelism equivalence: the set-partitioned engine at
	# workers 2/4/8 must be field-identical to the sequential loop over
	# the Table 2 kernels x commercial machines, under the race detector.
	go test -race -run 'TestSetPartitioned' -count=1 .
	go test -fuzz=FuzzParse -fuzztime=10s ./internal/lang/
	for m in harpertown nehalem dunnington; do
		go run ./cmd/topomap -kernel galgel -machine "$m" -scheme combined -check sampled >/dev/null
	done
	# Distributed sweep fabric (DESIGN.md "Distributed sweep fabric"): the
	# main evaluation sharded across 2 worker processes must render
	# byte-identically to the single-process run — clean, and with
	# process-level chaos killing/stalling/corrupting workers (the
	# experiment banner's elapsed time is the one wall-clock field in this
	# output, stripped before comparing). A generous -reassign-max keeps
	# chained chaos faults from exhausting a batch's budget.
	fabtmp=$(mktemp -d)
	go build -o "$fabtmp/benchtool" ./cmd/benchtool
	"$fabtmp/benchtool" -experiment fig13 -quick | sed -E 's/\([0-9.]+s\)//g' >"$fabtmp/local.txt"
	"$fabtmp/benchtool" -experiment fig13 -quick -fabric -fabric-workers 2 -lease-ttl 1s \
		| sed -E 's/\([0-9.]+s\)//g' >"$fabtmp/fabric.txt"
	cmp "$fabtmp/local.txt" "$fabtmp/fabric.txt"
	REPRO_FABRIC_PROC_CHAOS=7 "$fabtmp/benchtool" -experiment fig13 -quick \
		-fabric -fabric-workers 2 -lease-ttl 1s -reassign-max 8 \
		| sed -E 's/\([0-9.]+s\)//g' >"$fabtmp/chaos.txt"
	cmp "$fabtmp/local.txt" "$fabtmp/chaos.txt"
	rm -rf "$fabtmp"
fi
