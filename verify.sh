#!/bin/sh
# verify.sh — the repo's verification recipe (see ROADMAP.md).
#
#   ./verify.sh          # tier-1: build + lint + full test suite
#   ./verify.sh lint     # lint only: gofmt -l, go vet, topovet, and
#                        #   staticcheck when installed
#   ./verify.sh full     # tier-1 + the -race pass over the parallel
#                        #   runner, simulator, oracle and chaos injector,
#                        #   plus the topomapd serving layer and its
#                        #   chaos/soak harness (internal/serve/...),
#                        #   the set-partitioned simulator equivalence
#                        #   suite under -race (workers 2/4/8 byte-
#                        #   identical to sequential, CheckFull),
#                        #   a 10s fuzz smoke of the language front end,
#                        #   a -check=sampled smoke of one Table 2
#                        #   kernel per commercial machine,
#                        #   the distributed-fabric smoke: fig13
#                        #   sharded across 2 worker processes — clean
#                        #   and under process-level chaos — must render
#                        #   byte-identically to the single-process run,
#                        #   and the topomapd lifecycle smoke (below)
#   ./verify.sh topomapd # topomapd lifecycle smoke only: boot on an
#                        #   ephemeral port, serve one mapping, survive an
#                        #   overload burst answering only JSON envelopes,
#                        #   then drain cleanly on SIGTERM with exit 0
#                        #   (in-process leak/bounded-memory assertions
#                        #   live in internal/serve/chaostest)
#
# Tier-1 includes TestStreamingMatchesMaterialized (the equivalence gate
# between the streaming and materialized trace paths, now run under
# CheckFull), TestOracleEquivalence (the differential oracle agreeing with
# the production simulator on every Table 2 kernel x Table 1 machine), the
# fault-isolation suite (panic containment, cancellation, budgets,
# checkpoint/resume), the chaos suite (every injected fault class
# detected, healthy cells byte-identical) in internal/experiments, and the
# lint gate below — notably cmd/topovet, the repo's own analyzer suite
# (DESIGN.md "Static invariants"), which must report zero unsuppressed
# findings over the whole tree.
set -e

lint() {
	# gofmt: no unformatted files anywhere, analyzer fixtures included.
	unformatted=$(gofmt -l .)
	if [ -n "$unformatted" ]; then
		echo "gofmt: unformatted files:" >&2
		echo "$unformatted" >&2
		exit 1
	fi
	go vet ./...
	# topovet: determinism, memo-key completeness, context threading,
	# fault containment, scratch-buffer escape.
	go run ./cmd/topovet ./...
	# staticcheck is optional locally; CI pins and runs it always.
	if command -v staticcheck >/dev/null 2>&1; then
		staticcheck ./...
	fi
}

topomapd_smoke() {
	smoketmp=$(mktemp -d)
	go build -o "$smoketmp/topomapd" ./cmd/topomapd
	"$smoketmp/topomapd" -listen 127.0.0.1:0 -queue 8 -workers 2 \
		>"$smoketmp/out.log" 2>"$smoketmp/err.log" &
	srvpid=$!
	# The server prints its resolved address ("-listen :0" callers parse it).
	addr=""
	i=0
	while [ $i -lt 100 ]; do
		addr=$(sed -n 's#^topomapd: listening on http://##p' "$smoketmp/out.log")
		[ -n "$addr" ] && break
		sleep 0.1
		i=$((i + 1))
	done
	if [ -z "$addr" ]; then
		echo "topomapd smoke: server never reported its address" >&2
		cat "$smoketmp/err.log" >&2
		kill "$srvpid" 2>/dev/null || true
		exit 1
	fi
	# One mapping must evaluate end to end.
	curl -sf -X POST "http://$addr/v1/map" \
		-d '{"kernel":"fig5","machine":"dunnington","scheme":"base"}' \
		| grep -q '"ok":true'
	# Overload burst: 32 concurrent cold requests against a queue of 8.
	# Every response — success or shed — must be a JSON envelope; the
	# server must stay healthy throughout.
	: >"$smoketmp/burst.log"
	burstpids=""
	b=0
	while [ $b -lt 32 ]; do
		curl -s -X POST "http://$addr/v1/map" \
			-d "{\"kernel\":\"fig5\",\"machine\":\"dunnington\",\"scheme\":\"combined\",\"passes\":$((b % 8 + 1))}" \
			>>"$smoketmp/burst.log" 2>/dev/null &
		burstpids="$burstpids $!"
		b=$((b + 1))
	done
	for p in $burstpids; do
		wait "$p" || true
	done
	if grep -v '"ok"' "$smoketmp/burst.log" | grep -q '[^[:space:]]'; then
		echo "topomapd smoke: overload burst produced a non-envelope response:" >&2
		grep -v '"ok"' "$smoketmp/burst.log" >&2
		kill "$srvpid" 2>/dev/null || true
		exit 1
	fi
	curl -sf "http://$addr/healthz" >/dev/null
	# SIGTERM must drain gracefully: exit 0 and the drain banner.
	kill -TERM "$srvpid"
	if ! wait "$srvpid"; then
		echo "topomapd smoke: server exited non-zero after SIGTERM" >&2
		cat "$smoketmp/err.log" >&2
		exit 1
	fi
	grep -q "drained cleanly" "$smoketmp/out.log"
	rm -rf "$smoketmp"
}

if [ "$1" = "lint" ]; then
	lint
	exit 0
fi

if [ "$1" = "topomapd" ]; then
	topomapd_smoke
	exit 0
fi

go build ./...
lint
go test ./...

if [ "$1" = "full" ]; then
	go test -race ./internal/experiments/ ./internal/cachesim/ ./internal/oracle/ ./internal/chaos/
	# Serving layer under the race detector, chaos/soak harness included:
	# 200+ concurrent mixed hostile clients against a live server, asserting
	# well-formed envelopes, retryable sheds, bounded state and no leaked
	# goroutines (internal/serve/chaostest).
	go test -race ./internal/serve/...
	# Intra-cell parallelism equivalence: the set-partitioned engine at
	# workers 2/4/8 must be field-identical to the sequential loop over
	# the Table 2 kernels x commercial machines, under the race detector.
	go test -race -run 'TestSetPartitioned' -count=1 .
	go test -fuzz=FuzzParse -fuzztime=10s ./internal/lang/
	for m in harpertown nehalem dunnington; do
		go run ./cmd/topomap -kernel galgel -machine "$m" -scheme combined -check sampled >/dev/null
	done
	# Distributed sweep fabric (DESIGN.md "Distributed sweep fabric"): the
	# main evaluation sharded across 2 worker processes must render
	# byte-identically to the single-process run — clean, and with
	# process-level chaos killing/stalling/corrupting workers (the
	# experiment banner's elapsed time is the one wall-clock field in this
	# output, stripped before comparing). A generous -reassign-max keeps
	# chained chaos faults from exhausting a batch's budget.
	fabtmp=$(mktemp -d)
	go build -o "$fabtmp/benchtool" ./cmd/benchtool
	"$fabtmp/benchtool" -experiment fig13 -quick | sed -E 's/\([0-9.]+s\)//g' >"$fabtmp/local.txt"
	"$fabtmp/benchtool" -experiment fig13 -quick -fabric -fabric-workers 2 -lease-ttl 1s \
		| sed -E 's/\([0-9.]+s\)//g' >"$fabtmp/fabric.txt"
	cmp "$fabtmp/local.txt" "$fabtmp/fabric.txt"
	REPRO_FABRIC_PROC_CHAOS=7 "$fabtmp/benchtool" -experiment fig13 -quick \
		-fabric -fabric-workers 2 -lease-ttl 1s -reassign-max 8 \
		| sed -E 's/\([0-9.]+s\)//g' >"$fabtmp/chaos.txt"
	cmp "$fabtmp/local.txt" "$fabtmp/chaos.txt"
	rm -rf "$fabtmp"
	# topomapd lifecycle: boot, serve, survive an overload burst, drain on
	# SIGTERM with exit 0.
	topomapd_smoke
fi
