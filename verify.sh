#!/bin/sh
# verify.sh — the repo's verification recipe (see ROADMAP.md).
#
#   ./verify.sh          # tier-1: build + full test suite
#   ./verify.sh full     # + go vet and the -race pass over the parallel
#                        #   runner (streamed cells at -j 8) and simulator
#
# Tier-1 includes TestStreamingMatchesMaterialized, the equivalence gate
# between the streaming and materialized trace paths.
set -e

go build ./...
go test ./...

if [ "$1" = "full" ]; then
	go vet ./...
	go test -race ./internal/experiments/ ./internal/cachesim/
fi
