#!/bin/sh
# verify.sh — the repo's verification recipe (see ROADMAP.md).
#
#   ./verify.sh          # tier-1: build + full test suite
#   ./verify.sh full     # + go vet, the -race pass over the parallel
#                        #   runner, simulator, oracle and chaos injector,
#                        #   a 10s fuzz smoke of the language front end,
#                        #   and a -check=sampled smoke of one Table 2
#                        #   kernel per commercial machine
#
# Tier-1 includes TestStreamingMatchesMaterialized (the equivalence gate
# between the streaming and materialized trace paths, now run under
# CheckFull), TestOracleEquivalence (the differential oracle agreeing with
# the production simulator on every Table 2 kernel x Table 1 machine), the
# fault-isolation suite (panic containment, cancellation, budgets,
# checkpoint/resume) and the chaos suite (every injected fault class
# detected, healthy cells byte-identical) in internal/experiments.
set -e

go build ./...
go test ./...

if [ "$1" = "full" ]; then
	go vet ./...
	go test -race ./internal/experiments/ ./internal/cachesim/ ./internal/oracle/ ./internal/chaos/
	go test -fuzz=FuzzParse -fuzztime=10s ./internal/lang/
	for m in harpertown nehalem dunnington; do
		go run ./cmd/topomap -kernel galgel -machine "$m" -scheme combined -check sampled >/dev/null
	done
fi
