package repro_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§4). Each benchmark drives the same experiment code
// as cmd/benchtool (internal/experiments) and reports the figure's headline
// quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. The benchmarks default to a reduced
// kernel subset to keep a full -bench=. pass in the minutes range; run
// cmd/benchtool for the full twelve-application tables.

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/baseline"
	"repro/internal/cachesim"
	"repro/internal/experiments"
	"repro/internal/poly"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// benchKernels is the representative subset used by the heavier figures:
// two distant-sharing kernels, one layout-mismatch kernel, one near-sharing
// kernel and one hot-table kernel.
func benchKernels(b *testing.B) []*workloads.Kernel {
	b.Helper()
	var ks []*workloads.Kernel
	for _, name := range []string{"galgel", "bodytrack", "applu", "cg", "mesa"} {
		k, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		ks = append(ks, k)
	}
	return ks
}

func BenchmarkTable1Machines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Table1()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Workloads(b *testing.B) {
	opt := experiments.Options{}
	for i := 0; i < b.N; i++ {
		out := experiments.Table2(opt)
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig2CrossMachineMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig2(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13MainEvaluation(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		res, err := experiments.Fig13(r, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgTopology["Dunnington"], "TAnorm@Dunnington")
		b.ReportMetric(res.AvgBasePlus["Dunnington"], "Base+norm@Dunnington")
	}
}

func BenchmarkFig14CrossMachinePenalty(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig14(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15SchedulingImpact(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig15(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16BlockSize(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b), Quick: true}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig16(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17CoreScaling(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b), Quick: true}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig17(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18HierarchyDepth(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig18(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19HalvedCaches(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig19(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20OptimalGap(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)[:2], Quick: true}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig20(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlphaBeta(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)[:3], Quick: true}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.AlphaBeta(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDependenceModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.DependenceModes(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)[:3]}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Ablation(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileTime(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)[:3]}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.CompileTime(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentGrid drives the full (machine × kernel × scheme)
// experiment grid through the parallel runner at several worker-pool
// sizes. The j=1 case is the serial harness; comparing its ns/op against
// j=4/j=8 shows the wall-time speedup of the worker pool (the aggregated
// results are byte-identical at every size — see TestRunCellsDeterministic).
func BenchmarkExperimentGrid(b *testing.B) {
	kernels := benchKernels(b)
	machines := topology.Commercial()
	schemes := []repro.Scheme{repro.SchemeBase, repro.SchemeBasePlus, repro.SchemeTopologyAware, repro.SchemeCombined}
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.NewRunner()
				r.SetWorkers(j)
				cells := experiments.Grid(machines, kernels, schemes, repro.DefaultConfig())
				if err := r.Prefetch(cells); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Streaming-trace benchmarks (Fig 17-weak scaled kernel): the trace +
// simulate stage of one weak-scaling cell, with the mapping precomputed
// outside the timer. The materialized variant expands the full access
// stream (O(accesses) · 16 B) before simulation; the streamed variant
// feeds the simulator from lazy per-core cursors (O(cores) state). The
// bytes/op gap between the two is the per-cell trace memory the streaming
// path eliminates — record runs of these into BENCH_trace_streaming.json.

func weakScaledBaseOrder(b *testing.B) ([][]poly.Point, *workloads.Kernel, *repro.Machine) {
	b.Helper()
	k, err := workloads.Scaled("galgel", 8)
	if err != nil {
		b.Fatal(err)
	}
	m, err := topology.ScaleDunnington(24)
	if err != nil {
		b.Fatal(err)
	}
	return baseline.Base(k, m.NumCores()), k, m
}

func benchWeakScaledTrace(b *testing.B, materialize bool) {
	perCore, k, m := weakScaledBaseOrder(b)
	layout := k.Layout(repro.DefaultConfig().BlockBytes)
	sim := cachesim.New(m)
	b.ReportAllocs()
	b.ResetTimer()
	var accesses uint64
	for i := 0; i < b.N; i++ {
		var src trace.Source = trace.StreamOrder(perCore, k.Refs, layout)
		if materialize {
			src = trace.Materialize(src)
		}
		res, err := sim.Run(src)
		if err != nil {
			b.Fatal(err)
		}
		accesses = res.Accesses
	}
	b.ReportMetric(float64(accesses), "accesses/cell")
}

func BenchmarkWeakScaledTraceStreamed(b *testing.B)     { benchWeakScaledTrace(b, false) }
func BenchmarkWeakScaledTraceMaterialized(b *testing.B) { benchWeakScaledTrace(b, true) }

// BenchmarkWeakScaledCell is the end-to-end variant: the whole Evaluate
// (mapping + trace + simulation) of one Fig 17-weak Base cell, streamed vs
// materialized. The gap here is diluted by the mapping pipeline's own
// allocations, which is why the trace-stage benchmarks above are the
// headline comparison.
func benchWeakScaledCell(b *testing.B, materialize bool) {
	k, err := workloads.Scaled("galgel", 8)
	if err != nil {
		b.Fatal(err)
	}
	m, err := topology.ScaleDunnington(24)
	if err != nil {
		b.Fatal(err)
	}
	cfg := repro.DefaultConfig()
	cfg.Materialize = materialize
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Evaluate(k, m, repro.SchemeBase, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeakScaledCellStreamed(b *testing.B)     { benchWeakScaledCell(b, false) }
func BenchmarkWeakScaledCellMaterialized(b *testing.B) { benchWeakScaledCell(b, true) }

// Component micro-benchmarks: the mapping pipeline's own cost (the paper
// reports 65-94% compile-time overhead, §4.1).

func BenchmarkPipelineTagging(b *testing.B) {
	k := repro.KernelByNameMust("galgel")
	m := topology.Dunnington()
	cfg := repro.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Evaluate(k, m, repro.SchemeTopologyAware, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineBaseOnly(b *testing.B) {
	k := repro.KernelByNameMust("galgel")
	m := topology.Dunnington()
	cfg := repro.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Evaluate(k, m, repro.SchemeBase, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
