package repro_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§4). Each benchmark drives the same experiment code
// as cmd/benchtool (internal/experiments) and reports the figure's headline
// quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. The benchmarks default to a reduced
// kernel subset to keep a full -bench=. pass in the minutes range; run
// cmd/benchtool for the full twelve-application tables.

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// benchKernels is the representative subset used by the heavier figures:
// two distant-sharing kernels, one layout-mismatch kernel, one near-sharing
// kernel and one hot-table kernel.
func benchKernels(b *testing.B) []*workloads.Kernel {
	b.Helper()
	var ks []*workloads.Kernel
	for _, name := range []string{"galgel", "bodytrack", "applu", "cg", "mesa"} {
		k, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		ks = append(ks, k)
	}
	return ks
}

func BenchmarkTable1Machines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Table1()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Workloads(b *testing.B) {
	opt := experiments.Options{}
	for i := 0; i < b.N; i++ {
		out := experiments.Table2(opt)
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig2CrossMachineMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig2(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13MainEvaluation(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		res, err := experiments.Fig13(r, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgTopology["Dunnington"], "TAnorm@Dunnington")
		b.ReportMetric(res.AvgBasePlus["Dunnington"], "Base+norm@Dunnington")
	}
}

func BenchmarkFig14CrossMachinePenalty(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig14(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15SchedulingImpact(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig15(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16BlockSize(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b), Quick: true}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig16(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17CoreScaling(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b), Quick: true}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig17(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18HierarchyDepth(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig18(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19HalvedCaches(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig19(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20OptimalGap(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)[:2], Quick: true}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Fig20(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlphaBeta(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)[:3], Quick: true}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.AlphaBeta(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDependenceModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.DependenceModes(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)[:3]}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.Ablation(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileTime(b *testing.B) {
	opt := experiments.Options{Kernels: benchKernels(b)[:3]}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := experiments.CompileTime(r, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentGrid drives the full (machine × kernel × scheme)
// experiment grid through the parallel runner at several worker-pool
// sizes. The j=1 case is the serial harness; comparing its ns/op against
// j=4/j=8 shows the wall-time speedup of the worker pool (the aggregated
// results are byte-identical at every size — see TestRunCellsDeterministic).
func BenchmarkExperimentGrid(b *testing.B) {
	kernels := benchKernels(b)
	machines := topology.Commercial()
	schemes := []repro.Scheme{repro.SchemeBase, repro.SchemeBasePlus, repro.SchemeTopologyAware, repro.SchemeCombined}
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.NewRunner()
				r.SetWorkers(j)
				cells := experiments.Grid(machines, kernels, schemes, repro.DefaultConfig())
				if err := r.Prefetch(cells); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Component micro-benchmarks: the mapping pipeline's own cost (the paper
// reports 65-94% compile-time overhead, §4.1).

func BenchmarkPipelineTagging(b *testing.B) {
	k := repro.KernelByNameMust("galgel")
	m := topology.Dunnington()
	cfg := repro.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Evaluate(k, m, repro.SchemeTopologyAware, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineBaseOnly(b *testing.B) {
	k := repro.KernelByNameMust("galgel")
	m := topology.Dunnington()
	cfg := repro.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Evaluate(k, m, repro.SchemeBase, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
