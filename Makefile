# Convenience entry points; verify.sh is the source of truth for what each
# tier runs.

.PHONY: all build test lint verify full

all: verify

build:
	go build ./...

test:
	go test ./...

lint:
	./verify.sh lint

verify:
	./verify.sh

full:
	./verify.sh full
