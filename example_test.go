package repro_test

// Testable examples: these run under `go test` and their output is
// verified, so the documented behaviour cannot drift from the code.

import (
	"fmt"

	"repro"
)

// ExampleCompileKernel shows the front end turning Figure 4-style source
// into a mappable kernel.
func ExampleCompileKernel() {
	src := `
array B[3072]
for (j = 512; j <= 2559) {
  B[j] += B[j + 512] + B[j - 512];
}
`
	k, err := repro.CompileKernel("fig5", src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s: %d iterations, %d references, %d bytes\n",
		k.Name, k.Iterations(), len(k.Refs), k.DataBytes())
	// Output:
	// fig5: 2048 iterations, 3 references, 24576 bytes
}

// ExampleEvaluate maps the paper's running example and reports the
// iteration-group count — the eight groups of Figure 10(a).
func ExampleEvaluate() {
	k := repro.KernelByNameMust("fig5")
	m := repro.Dunnington()
	run, err := repro.Evaluate(k, m, repro.SchemeTopologyAware, repro.DefaultConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("groups: %d\n", run.Groups)
	fmt.Printf("machine: %s with %d cores\n", run.Machine.Name, run.Machine.NumCores())
	// Output:
	// groups: 8
	// machine: Dunnington with 12 cores
}

// ExampleMachineByName shows topology queries: which cores share which
// cache level on Dunnington (Figure 1(c)).
func ExampleMachineByName() {
	m, _ := repro.MachineByName("dunnington")
	fmt.Printf("cores 0,1 share L%d\n", m.SharedLevel(0, 1))
	fmt.Printf("cores 0,2 share L%d\n", m.SharedLevel(0, 2))
	fmt.Printf("cores 0,6 share L%d (different sockets)\n", m.SharedLevel(0, 6))
	// Output:
	// cores 0,1 share L2
	// cores 0,2 share L3
	// cores 0,6 share L0 (different sockets)
}

// ExampleLoadMachine round-trips a machine through JSON.
func ExampleLoadMachine() {
	data, _ := repro.SaveMachine(repro.Harpertown())
	m, err := repro.LoadMachine(data)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s: %d cores, deepest cache L%d\n", m.Name, m.NumCores(), m.MaxLevel())
	// Output:
	// Harpertown: 8 cores, deepest cache L2
}
