package repro_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// TestOracleEquivalence is the acceptance bar for the differential oracle:
// every Table 2 kernel on all three commercial Table 1 machines evaluates
// under CheckFull, so each cell's production simulation (slice heap,
// streaming cursors, scratch reuse) is recomputed by the deliberately naive
// reference simulator and compared field for field. Any disagreement — in
// total cycles, per-core cycles, per-level or per-cache-instance hit/miss
// counts, writebacks, barriers or off-chip accesses — fails the evaluation
// with a DivergenceError naming the first differing field.
//
// SchemeCombined exercises the most machinery (topology-aware grouping plus
// scheduling), and SchemeBase the plain path; the oracle itself is
// scheme-blind, consuming only the final trace.
func TestOracleEquivalence(t *testing.T) {
	schemes := []repro.Scheme{repro.SchemeBase, repro.SchemeCombined}
	for _, m := range topology.Commercial() {
		for _, k := range workloads.All() {
			for _, s := range schemes {
				t.Run(fmt.Sprintf("%s/%s/%v", m.Name, k.Name, s), func(t *testing.T) {
					cfg := repro.DefaultConfig()
					cfg.Check = repro.CheckFull
					if _, err := repro.Evaluate(k, m, s, cfg); err != nil {
						t.Errorf("oracle check failed: %v", err)
					}
				})
			}
		}
	}
}

// TestOracleEquivalenceCrossMapped covers the cross-evaluation path
// (Fig 18/19's mapped-for-machine-A-run-on-machine-B cells): the oracle must
// agree there too, since the mapping machine changes the trace, not the
// simulator.
func TestOracleEquivalenceCrossMapped(t *testing.T) {
	k, err := workloads.ByName("galgel")
	if err != nil {
		t.Fatal(err)
	}
	cfg := repro.DefaultConfig()
	cfg.Check = repro.CheckFull
	mapM := topology.Harpertown()
	runM := topology.Dunnington()
	if _, err := repro.CrossEvaluate(k, mapM, runM, repro.SchemeCombined, cfg); err != nil {
		t.Errorf("cross-mapped oracle check failed: %v", err)
	}
}
