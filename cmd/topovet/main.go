// Command topovet is the repo's own static analyzer: a multichecker of
// project-specific passes that enforce, at compile time, the invariants
// the runtime self-checking layers (PR 4/PR 5) can only catch after the
// fact — determinism of everything that feeds a rendered figure,
// completeness of memo/checkpoint keys, context threading below the
// driver layer, fault containment at the cell boundary, and non-escape of
// pooled scratch buffers.
//
// Usage:
//
//	topovet ./...            # analyze packages (go list patterns)
//	topovet -list            # describe the analyzers and exit
//	topovet -only memokey ./...  # run a single analyzer
//
// Findings print as file:line:col: [analyzer] message, and the exit
// status is 1 when any survive suppression. The suppression policy
// (//lint:ignore <analyzer> <justification>) and each analyzer's
// rationale are documented in DESIGN.md "Static invariants".
//
// topovet runs in tier-1 verification (./verify.sh) and CI; the tree must
// stay clean.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/cellboundary"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/memokey"
	"repro/internal/analysis/nondeterminism"
	"repro/internal/analysis/scratchalias"
)

// analyzers is the topovet suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	cellboundary.Analyzer,
	ctxflow.Analyzer,
	memokey.Analyzer,
	nondeterminism.Analyzer,
	scratchalias.Analyzer,
}

func main() { os.Exit(run()) }

// run keeps main free of logic so the exit status is the only thing
// os.Exit skips.
func run() int {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("only", "", "run a single analyzer by name")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	suite := analyzers
	if *only != "" {
		suite = nil
		for _, a := range analyzers {
			if a.Name == *only {
				suite = []*analysis.Analyzer{a}
			}
		}
		if suite == nil {
			fmt.Fprintf(os.Stderr, "topovet: unknown analyzer %q (see -list)\n", *only)
			return 2
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "topovet:", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topovet:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topovet:", err)
		return 2
	}
	for _, d := range diags {
		pos := d.Position(pkgs[0].Fset)
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "topovet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
