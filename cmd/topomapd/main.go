// Command topomapd is the mapping-as-a-service server: a long-running
// HTTP/JSON daemon that accepts a kernel (registry name or polyhedral
// source) plus a machine description and returns the computed mapping
// summary and predicted miss profile.
//
//	topomapd -listen 127.0.0.1:8723 -queue 64 -lru 1024
//
//	curl -s localhost:8723/v1/map -d '{"kernel":"galgel","machine":"nehalem","scheme":"combined"}'
//
// Endpoints:
//
//	POST /v1/map     evaluate (or serve from cache); JSON envelope response
//	POST /v1/record  same pipeline, sealed checkpoint-record response
//	                 (the fabric-offload wire form)
//	GET  /healthz    liveness
//	GET  /readyz     readiness (503 once draining)
//	GET  /statusz    counters + degradation state (queue, shed, breaker)
//
// Robustness is the point: bounded admission queue with watermark load
// shedding (cached results keep serving), per-request deadlines and cycle
// budgets, request coalescing into a bounded result LRU, panic-to-503
// containment, a circuit breaker in front of -fabric-url offload, and a
// graceful SIGTERM/SIGINT drain bounded by -drain-timeout. See
// internal/serve and DESIGN.md "Serving and degradation".
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
	"repro/internal/serve"
)

func main() { os.Exit(run()) }

// run keeps main free of logic so the exit status is the only thing
// os.Exit skips.
func run() int {
	fs := flag.NewFlagSet("topomapd", flag.ExitOnError)
	sf := cli.AddServeFlags(fs)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	srv, err := serve.New(sf.Options())
	if err != nil {
		return fail(err)
	}
	defer func() {
		if cerr := srv.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "topomapd: closing checkpoint:", cerr)
		}
	}()

	ln, err := net.Listen("tcp", *sf.Listen)
	if err != nil {
		return fail(err)
	}
	// The actual address, for -listen :0 callers (tests, smoke scripts).
	fmt.Printf("topomapd: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	if err := srv.Serve(ctx, ln); err != nil {
		return fail(err)
	}
	fmt.Println("topomapd: drained cleanly")
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "topomapd:", err)
	return 1
}
