// Command topomap maps one workload onto one machine and reports the
// outcome: the machine's cache hierarchy tree, the iteration-group
// statistics, the per-core assignment, the simulated cycles and cache miss
// rates of every scheme, and optionally the generated per-core loop
// pseudo-code (the Omega-codegen role of §3.4).
//
// Usage:
//
//	topomap -kernel galgel -machine dunnington
//	topomap -kernel fig5 -machine dunnington -code
//	topomap -kernel wavefront -machine nehalem -scheme combined -deps conservative
//	topomap -kernel galgel -j 0            # evaluate all schemes in parallel
//	topomap -kernel galgel -timeout 30s -retries 1 -checkpoint g.ckpt
//	topomap -kernel galgel -check sampled  # runtime invariants + sampled oracle
//	topomap -kernel galgel -chaos-seed 7 -replaydir b/   # fault-inject the checks
//	topomap -kernel galgel -fabric         # shard cells across worker processes
//	topomap worker -coord http://host:port # run as a fabric worker
//
// A scheme whose evaluation fails renders as a "FAILED" line in place of
// its statistics; the remaining schemes still run and the exit status is
// nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/optimal"
)

func main() { os.Exit(run()) }

// run carries the whole tool so the deferred checkpoint close executes
// before the process exits; os.Exit in main would skip it.
func run() int {
	// `topomap worker -coord URL` turns this process into a fabric worker;
	// see cli.WorkerMain. Intercepted before flag parsing.
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		return cli.WorkerMain("topomap", os.Args[2:])
	}
	kernelName := flag.String("kernel", "galgel", "workload name (see Table 2; plus fig5, wavefront)")
	srcPath := flag.String("src", "", "compile a loop-nest source file instead of using -kernel")
	machineName := flag.String("machine", "dunnington", "machine name (harpertown, nehalem, dunnington, arch-i, arch-ii)")
	machineFile := flag.String("machine-file", "", "load a JSON machine description instead of -machine")
	schemeName := flag.String("scheme", "", "run a single scheme (base, base+, local, topology, combined); default: all")
	depsMode := flag.String("deps", "sync", "dependence handling: sync or conservative")
	block := flag.Int64("block", 2048, "data block size in bytes")
	showCode := flag.Bool("code", false, "print generated per-core loop pseudo-code")
	showSched := flag.Bool("sched", false, "print the per-core round/barrier schedule")
	showCaches := flag.Bool("cachestats", false, "print per-cache-instance hit/miss statistics")
	runOptimal := flag.Bool("optimal", false, "also search for the optimal mapping (coarse groups; can take minutes)")
	showSource := flag.Bool("source", false, "pretty-print the kernel as loop-nest source")
	showTree := flag.Bool("tree", true, "print the machine's cache hierarchy tree")
	rf := cli.AddRunnerFlags(flag.CommandLine, 1)
	flag.Parse()

	var k *repro.Kernel
	var err error
	if *srcPath != "" {
		src, rerr := os.ReadFile(*srcPath)
		if rerr != nil {
			return fail(rerr)
		}
		name := filepath.Base(*srcPath)
		name = strings.TrimSuffix(name, filepath.Ext(name))
		k, err = repro.CompileKernel(name, string(src))
	} else {
		k, err = repro.KernelByName(*kernelName)
	}
	if err != nil {
		return fail(err)
	}
	var m *repro.Machine
	if *machineFile != "" {
		data, rerr := os.ReadFile(*machineFile)
		if rerr != nil {
			return fail(rerr)
		}
		m, err = repro.LoadMachine(data)
	} else {
		m, err = repro.MachineByName(*machineName)
	}
	if err != nil {
		return fail(err)
	}
	cfg := repro.DefaultConfig()
	cfg.BlockBytes = *block
	if *depsMode == "conservative" {
		cfg.Deps = repro.DepsConservative
	}

	fmt.Printf("workload: %s\n", k)
	if *showSource {
		fmt.Println("== source ==")
		fmt.Print(repro.RenderKernel(k))
	}
	if *showTree {
		fmt.Println(m)
	}

	schemes := repro.AllSchemes()
	if *schemeName != "" {
		s, err := parseScheme(*schemeName)
		if err != nil {
			return fail(err)
		}
		schemes = []repro.Scheme{s}
	}

	// Evaluate every scheme as one grid batch on the worker pool (serial at
	// the default -j 1), then render in scheme order: the output is
	// identical at any pool size.
	grid := experiments.GridSignature(append([]string{
		"tool=topomap",
		"kernel=" + k.Name,
		"machine=" + m.Name,
		fmt.Sprintf("block=%d", *block),
		"deps=" + *depsMode,
		"scheme=" + *schemeName,
	}, rf.GridParts()...)...)
	r, cleanup, err := rf.Configure("topomap", grid)
	if err != nil {
		return fail(err)
	}
	defer cleanup()
	cells := make([]experiments.Cell, len(schemes))
	for i, s := range schemes {
		cells[i] = experiments.Cell{Kernel: k, Machine: m, Scheme: s, Config: cfg}
	}
	_ = r.Prefetch(cells)

	var baseCycles uint64
	for _, s := range schemes {
		run, err := r.Evaluate(k, m, s, cfg)
		if err != nil {
			// Degrade per scheme: the failed row says so, the rest render.
			fmt.Printf("%-14v FAILED: %v\n", s, err)
			continue
		}
		if s == repro.SchemeBase {
			baseCycles = run.Sim.TotalCycles
		}
		norm := ""
		if baseCycles > 0 {
			norm = fmt.Sprintf(" (%.3f of Base)", float64(run.Sim.TotalCycles)/float64(baseCycles))
		}
		fmt.Printf("%-14v %12d cycles%s  L1 %4.1f%%  L2 %4.1f%%  L3 %4.1f%% miss  %d groups  map %v\n",
			s, run.Sim.TotalCycles, norm,
			100*run.Sim.MissRate(1), 100*run.Sim.MissRate(2), 100*run.Sim.MissRate(3),
			run.Groups, run.MapTime.Round(time.Millisecond))
		if *showSched && run.Schedule != nil {
			fmt.Print(run.Schedule.Render(run.Mapping))
		}
		if *showCaches {
			for _, cs := range run.Sim.PerCache {
				fmt.Printf("  %-6s cores %v: %8d hits %8d misses (%.1f%%), %d writebacks\n",
					cs.Label, cs.Cores, cs.Hits, cs.Misses, 100*cs.MissRate(), cs.Writebacks)
			}
		}
		if *showCode && (s == repro.SchemeTopologyAware || s == repro.SchemeCombined) {
			for c, code := range repro.GeneratePerCoreCode(run) {
				fmt.Printf("--- core %d ---\n%s", c, code)
			}
		}
	}

	if *runOptimal {
		start := time.Now()
		ocfg := cfg
		ocfg.MaxGroups = 48 // coarse groups keep the search tractable
		sc, err := repro.NewSearchContext(k, m, ocfg)
		if err != nil {
			return fail(err)
		}
		res, err := optimal.Search(sc.NumGroups(), m.NumCores(), [][][]int{sc.Seed()}, sc.Cost, optimal.Options{})
		if err != nil {
			return fail(err)
		}
		kind := "best-found"
		if res.Exact {
			kind = "exact optimum"
		}
		seedCost, err := sc.Cost(sc.Seed())
		if err != nil {
			return fail(err)
		}
		fmt.Printf("optimal search (%s, %d evals, %v): %d cycles; heuristic seed %d cycles (gap %.1f%%)\n",
			kind, res.Evals, time.Since(start).Round(time.Millisecond), res.Cost, seedCost,
			100*(float64(seedCost)/float64(res.Cost)-1))
	}

	if cli.ReportFailures(r, "topomap") > 0 {
		return 1
	}
	return 0
}

func parseScheme(s string) (repro.Scheme, error) {
	switch s {
	case "base":
		return repro.SchemeBase, nil
	case "base+", "baseplus":
		return repro.SchemeBasePlus, nil
	case "local":
		return repro.SchemeLocal, nil
	case "topology", "topologyaware", "ta":
		return repro.SchemeTopologyAware, nil
	case "combined":
		return repro.SchemeCombined, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", s)
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "topomap:", err)
	return 1
}
