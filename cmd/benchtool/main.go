// Command benchtool regenerates the paper's tables and figures.
//
// Usage:
//
//	benchtool                     # run every experiment
//	benchtool -experiment fig13   # run one (table1, table2, fig2, fig13,
//	                              # fig14, fig15, fig16, fig17, fig18,
//	                              # fig19, fig20, alphabeta, deps,
//	                              # ablation, compiletime, steadystate)
//	benchtool -quick              # shrink sweeps for a fast pass
//	benchtool -kernels galgel,cg  # restrict the workload set
//	benchtool -j 8                # run grid cells on 8 workers (0 = all
//	                              # cores, 1 = serial); output is identical
//	                              # at every -j, only wall time changes
//	benchtool -progress           # report cells done/total + ETA on stderr
//	benchtool -cellstats          # per-cell wall-time/cycles/alloc summary
//	benchtool -benchjson out.json # write per-cell wall-time/cycles/access/
//	                              # alloc metrics as JSON at exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	exp := flag.String("experiment", "all", "experiment to run (all, table1, table2, fig2, fig13, fig14, fig15, fig16, fig17, fig18, fig19, fig20, alphabeta, deps, ablation, compiletime, steadystate)")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast pass")
	kernels := flag.String("kernels", "", "comma-separated kernel subset (default: all twelve)")
	outDir := flag.String("o", "", "also write each experiment's output to <dir>/<name>.txt")
	poolSize := flag.Int("j", 0, "worker pool size for grid cells (0 = GOMAXPROCS, 1 = serial; output is identical at any value)")
	progress := flag.Bool("progress", false, "report cells done/total and ETA on stderr")
	cellStats := flag.Bool("cellstats", false, "print a per-cell wall-time/cycles/allocation summary on stderr at exit")
	benchJSON := flag.String("benchjson", "", "write per-cell wall-time/cycles/access/allocation metrics as JSON to this path at exit")
	flag.Parse()

	opt := experiments.Options{Quick: *quick}
	if *kernels != "" {
		for _, name := range strings.Split(*kernels, ",") {
			k, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			opt.Kernels = append(opt.Kernels, k)
		}
	}
	r := experiments.NewRunner()
	r.SetWorkers(*poolSize)
	if *progress {
		r.SetProgress(progressReporter())
	}
	if *cellStats {
		defer func() { fmt.Fprint(os.Stderr, "\n"+r.Metrics().Summary(10)) }()
	}
	if *benchJSON != "" {
		defer func() {
			if err := writeBenchJSON(r, *benchJSON); err != nil {
				fatal(err)
			}
		}()
	}

	type job struct {
		name string
		run  func() (string, error)
	}
	jobs := []job{
		{"table1", func() (string, error) { return experiments.Table1(), nil }},
		{"table2", func() (string, error) { return experiments.Table2(opt), nil }},
		{"fig2", func() (string, error) { return experiments.Fig2(r) }},
		{"fig13", func() (string, error) {
			res, err := experiments.Fig13(r, opt)
			if err != nil {
				return "", err
			}
			return res.Rendered, nil
		}},
		{"fig14", func() (string, error) { return experiments.Fig14(r, opt) }},
		{"fig15", func() (string, error) { return experiments.Fig15(r, opt) }},
		{"fig16", func() (string, error) { return experiments.Fig16(r, opt) }},
		{"fig17", func() (string, error) { return experiments.Fig17(r, opt) }},
		{"fig17weak", func() (string, error) { return experiments.Fig17Weak(r, opt) }},
		{"fig18", func() (string, error) { return experiments.Fig18(r, opt) }},
		{"fig19", func() (string, error) { return experiments.Fig19(r, opt) }},
		{"fig20", func() (string, error) { return experiments.Fig20(r, opt) }},
		{"alphabeta", func() (string, error) { return experiments.AlphaBeta(r, opt) }},
		{"deps", func() (string, error) { return experiments.DependenceModes(r) }},
		{"ablation", func() (string, error) { return experiments.Ablation(r, opt) }},
		{"compiletime", func() (string, error) { return experiments.CompileTime(r, opt) }},
		{"steadystate", func() (string, error) { return experiments.SteadyState(r, opt) }},
	}

	ran := 0
	for _, j := range jobs {
		if *exp != "all" && *exp != j.name {
			continue
		}
		ran++
		start := time.Now()
		out, err := j.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", j.name, err))
		}
		fmt.Printf("=== %s (%v) ===\n%s\n", j.name, time.Since(start).Round(time.Millisecond), out)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, j.name+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	if ran == 0 {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

// progressReporter returns a ProgressFunc that rewrites one stderr status
// line per batch: cells done / total, percent, elapsed and ETA. Updates are
// throttled to one per 100ms except the final one, which ends the line.
func progressReporter() experiments.ProgressFunc {
	var last time.Time
	return func(done, total int, elapsed, eta time.Duration) {
		if done < total && time.Since(last) < 100*time.Millisecond {
			return
		}
		last = time.Now()
		fmt.Fprintf(os.Stderr, "\r%d/%d cells (%.0f%%), elapsed %s, eta %s    ",
			done, total, 100*float64(done)/float64(total),
			elapsed.Round(time.Second), eta.Round(time.Second))
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// writeBenchJSON dumps the runner's per-cell execution log as JSON. The
// cells are sorted by key inside WriteJSON, so the file is deterministic
// for a given experiment selection regardless of -j.
func writeBenchJSON(r *experiments.Runner, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Metrics().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtool:", err)
	os.Exit(1)
}
