// Command benchtool regenerates the paper's tables and figures.
//
// Usage:
//
//	benchtool                     # run every experiment
//	benchtool -experiment fig13   # run one (table1, table2, fig2, fig13,
//	                              # fig14, fig15, fig16, fig17, fig18,
//	                              # fig19, fig20, alphabeta, deps,
//	                              # ablation, compiletime, steadystate)
//	benchtool -quick              # shrink sweeps for a fast pass
//	benchtool -kernels galgel,cg  # restrict the workload set
//	benchtool -j 8                # run grid cells on 8 workers (0 = all
//	                              # cores, 1 = serial); output is identical
//	                              # at every -j, only wall time changes
//	benchtool -simworkers 4       # parallelize each cell's simulation on
//	                              # the set-partitioned engine; output is
//	                              # byte-identical at every value
//	benchtool -cpuprofile p.prof  # write a CPU profile for the whole run
//	benchtool -memprofile m.prof  # write a heap profile at exit
//	benchtool -progress           # report cells done/total + ETA on stderr
//	benchtool -cellstats          # per-cell wall-time/cycles/alloc summary
//	benchtool -benchjson out.json # write per-cell wall-time/cycles/access/
//	                              # alloc metrics as JSON at exit
//	benchtool -checkpoint f.ckpt  # persist completed cells; a re-run with
//	                              # the same file recomputes nothing (the
//	                              # file is bound to this sweep's identity)
//	benchtool -timeout 30s        # per-cell wall-time budget
//	benchtool -maxcycles N        # per-cell simulated-cycle budget
//	benchtool -retries 1          # retry failing cells
//	benchtool -check sampled      # self-check: runtime invariants plus the
//	                              # differential oracle on 1-in-4 cells
//	                              # (invariants / sampled / full)
//	benchtool -chaos-seed 7       # corrupt ~1 in 3 cells deterministically
//	                              # to prove the checks fire (testing aid)
//	benchtool -replaydir d        # write replay bundles for failed checks
//	benchtool -replay b.json      # re-execute one failed cell from its
//	                              # bundle, full checking + materialized
//	                              # trace; exit 0 iff the failure reproduces
//	benchtool -fabric             # shard the grid across worker processes
//	                              # via the lease-based sweep fabric; output
//	                              # is byte-identical to a single-process
//	                              # run (-fabric-workers, -fabric-listen,
//	                              # -lease-ttl, -reassign-max tune it)
//	benchtool worker -coord URL   # run this process as a fabric worker
//	                              # against a coordinator printed by -fabric
//
// Failures degrade, not abort: a failing cell renders as "fail" in figures
// that support partial results, the remaining experiments still run, every
// failed cell's key and pipeline stage is listed on stderr at exit, and
// the exit status is nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() { os.Exit(run()) }

// run carries the whole tool so deferred work (cellstats, benchjson, the
// checkpoint file) executes before the process exits; os.Exit in main
// would skip it.
func run() int {
	// `benchtool worker -coord URL` turns this process into a fabric worker
	// pulling leased grid batches — the form -fabric spawns locally and
	// remote hosts run by hand. Intercepted before flag parsing: the worker
	// vocabulary is its own.
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		return cli.WorkerMain("benchtool", os.Args[2:])
	}
	exp := flag.String("experiment", "all", "experiment to run (all, table1, table2, fig2, fig13, fig14, fig15, fig16, fig17, fig18, fig19, fig20, alphabeta, deps, ablation, compiletime, steadystate)")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast pass")
	kernels := flag.String("kernels", "", "comma-separated kernel subset (default: all twelve)")
	outDir := flag.String("o", "", "also write each experiment's output to <dir>/<name>.txt")
	cellStats := flag.Bool("cellstats", false, "print a per-cell wall-time/cycles/allocation summary on stderr at exit")
	benchJSON := flag.String("benchjson", "", "write per-cell wall-time/cycles/access/allocation metrics as JSON to this path at exit")
	replay := flag.String("replay", "", "re-execute one failed cell from this replay bundle with full checking and a materialized trace, then exit (0 = failure reproduced)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path at exit")
	rf := cli.AddRunnerFlags(flag.CommandLine, 0)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fail(err)
				return
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
	}

	if *replay != "" {
		return runReplay(*replay)
	}

	opt := experiments.Options{Quick: *quick}
	if *kernels != "" {
		for _, name := range strings.Split(*kernels, ",") {
			k, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				return fail(err)
			}
			opt.Kernels = append(opt.Kernels, k)
		}
	}
	grid := experiments.GridSignature(append([]string{
		"tool=benchtool",
		"experiment=" + *exp,
		fmt.Sprintf("quick=%v", *quick),
		"kernels=" + *kernels,
	}, rf.GridParts()...)...)
	r, cleanup, err := rf.Configure("benchtool", grid)
	if err != nil {
		return fail(err)
	}
	defer cleanup()
	if *cellStats {
		defer func() { fmt.Fprint(os.Stderr, "\n"+r.Metrics().Summary(10)) }()
	}
	if *benchJSON != "" {
		defer func() {
			if err := writeBenchJSON(r, *benchJSON); err != nil {
				fail(err)
			}
		}()
	}

	type job struct {
		name string
		run  func() (string, error)
	}
	jobs := []job{
		{"table1", func() (string, error) { return experiments.Table1(), nil }},
		{"table2", func() (string, error) { return experiments.Table2(opt), nil }},
		{"fig2", func() (string, error) { return experiments.Fig2(r) }},
		{"fig13", func() (string, error) {
			res, err := experiments.Fig13(r, opt)
			if err != nil {
				return "", err
			}
			return res.Rendered, nil
		}},
		{"fig14", func() (string, error) { return experiments.Fig14(r, opt) }},
		{"fig15", func() (string, error) { return experiments.Fig15(r, opt) }},
		{"fig16", func() (string, error) { return experiments.Fig16(r, opt) }},
		{"fig17", func() (string, error) { return experiments.Fig17(r, opt) }},
		{"fig17weak", func() (string, error) { return experiments.Fig17Weak(r, opt) }},
		{"fig18", func() (string, error) { return experiments.Fig18(r, opt) }},
		{"fig19", func() (string, error) { return experiments.Fig19(r, opt) }},
		{"fig20", func() (string, error) { return experiments.Fig20(r, opt) }},
		{"alphabeta", func() (string, error) { return experiments.AlphaBeta(r, opt) }},
		{"deps", func() (string, error) { return experiments.DependenceModes(r) }},
		{"ablation", func() (string, error) { return experiments.Ablation(r, opt) }},
		{"compiletime", func() (string, error) { return experiments.CompileTime(r, opt) }},
		{"steadystate", func() (string, error) { return experiments.SteadyState(r, opt) }},
	}

	ran, failedJobs := 0, 0
	for _, j := range jobs {
		if *exp != "all" && *exp != j.name {
			continue
		}
		ran++
		start := time.Now()
		out, err := j.run()
		if err != nil {
			// One experiment failing outright (every cell it needs is dead)
			// must not take down the rest of the run: report and move on.
			fmt.Fprintf(os.Stderr, "benchtool: %s: %v\n", j.name, err)
			failedJobs++
			continue
		}
		fmt.Printf("=== %s (%v) ===\n%s\n", j.name, time.Since(start).Round(time.Millisecond), out)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return fail(err)
			}
			path := filepath.Join(*outDir, j.name+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				return fail(err)
			}
		}
	}
	if ran == 0 {
		return fail(fmt.Errorf("unknown experiment %q", *exp))
	}
	if n := cli.ReportFailures(r, "benchtool"); n > 0 || failedJobs > 0 {
		return 1
	}
	return 0
}

// runReplay re-executes the failed cell a replay bundle describes, with
// full checking and a materialized trace, and reports whether the recorded
// failure reproduces. Exit status 0 means it did (the bundle is a live,
// debuggable failure); 1 means the bundle could not be loaded or the cell
// now passes.
func runReplay(path string) int {
	b, err := experiments.LoadBundle(path)
	if err != nil {
		return fail(err)
	}
	what := fmt.Sprintf("%s on %s [%s]", b.Kernel, b.Machine, b.SchemeName)
	if b.MapMachine != "" {
		what += " mapped for " + b.MapMachine
	}
	fmt.Fprintf(os.Stderr, "benchtool: replaying %s (recorded stage %s, chaos seed %d, fault %q)\n",
		what, b.Stage, b.ChaosSeed, b.Fault)
	start := time.Now()
	run, err := experiments.Replay(context.Background(), b)
	elapsed := time.Since(start).Round(time.Millisecond)
	if err != nil {
		stage := experiments.StageOf(err)
		fmt.Fprintf(os.Stderr, "benchtool: replay reproduced a failure in %v [stage %s]: %v\n", elapsed, stage, err)
		if stage != b.Stage {
			fmt.Fprintf(os.Stderr, "benchtool: note: bundle recorded stage %s, replay failed at %s\n", b.Stage, stage)
		}
		return 0
	}
	fmt.Fprintf(os.Stderr, "benchtool: replay did NOT reproduce the failure: cell completed in %v (%s)\n",
		elapsed, run.Summary())
	return 1
}

// writeBenchJSON dumps the runner's per-cell execution log as JSON. The
// cells are sorted by key inside WriteJSON, so the file is deterministic
// for a given experiment selection regardless of -j.
func writeBenchJSON(r *experiments.Runner, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Metrics().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "benchtool:", err)
	return 1
}
