package repro_test

import (
	"testing"

	"repro"
)

// singleCoreJSON describes a one-core machine with a single private L1 —
// the degenerate topology where every scheme collapses to serial
// execution.
const singleCoreJSON = `{
  "name": "unicore", "clockGHz": 1, "memLatency": 100,
  "root": {"children": [
    {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4,
     "children": [{}]}
  ]}
}`

// TestSingleCoreMachine: a one-core machine is a valid mapping target for
// every scheme — no scheme divides by the core count, indexes past core 0,
// or produces a multi-core schedule — and all schemes execute the same
// access volume.
func TestSingleCoreMachine(t *testing.T) {
	m, err := repro.LoadMachine([]byte(singleCoreJSON))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCores() != 1 {
		t.Fatalf("machine has %d cores, want 1", m.NumCores())
	}
	k := repro.KernelByNameMust("fig5")
	cfg := repro.DefaultConfig()
	for _, s := range repro.AllSchemes() {
		run, err := repro.Evaluate(k, m, s, cfg)
		if err != nil {
			t.Fatalf("%v on single core: %v", s, err)
		}
		if got := run.Sim.Accesses; got != uint64(k.Accesses()) {
			t.Errorf("%v: simulated %d accesses, want %d", s, got, k.Accesses())
		}
	}
}

// TestPassesZeroIsIdentity: Passes of 0 and 1 both mean "run once" — the
// Repeat wrapper must not multiply or drop rounds at the identity values.
func TestPassesZeroIsIdentity(t *testing.T) {
	k := repro.KernelByNameMust("fig5")
	m := repro.Dunnington()
	cfg0 := repro.DefaultConfig()
	cfg0.Passes = 0
	cfg1 := repro.DefaultConfig()
	cfg1.Passes = 1
	r0, err := repro.Evaluate(k, m, repro.SchemeTopologyAware, cfg0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := repro.Evaluate(k, m, repro.SchemeTopologyAware, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Sim.TotalCycles != r1.Sim.TotalCycles || r0.Sim.Accesses != r1.Sim.Accesses {
		t.Errorf("Passes 0 = %d cycles/%d accesses, Passes 1 = %d/%d",
			r0.Sim.TotalCycles, r0.Sim.Accesses, r1.Sim.TotalCycles, r1.Sim.Accesses)
	}
}
