package repro_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// TestStreamingMatchesMaterialized is the equivalence guarantee behind the
// streaming trace path: for every Table 2 kernel on all three Table 1
// machines, feeding the simulator from lazy cursors produces a Result
// identical field for field to first materializing the whole access stream
// (Config.Materialize). The two paths share one generator
// (trace.Materialize ∘ trace.Stream*), so a divergence here means the
// simulator consumed a cursor in the wrong order, not that the streams
// differ. The streamed leg runs under CheckFull, so every cell here also
// exercises the runtime invariants and the differential oracle.
func TestStreamingMatchesMaterialized(t *testing.T) {
	schemes := []repro.Scheme{repro.SchemeBase, repro.SchemeCombined}
	for _, m := range topology.Commercial() {
		for _, k := range workloads.All() {
			for _, s := range schemes {
				t.Run(fmt.Sprintf("%s/%s/%v", m.Name, k.Name, s), func(t *testing.T) {
					cfg := repro.DefaultConfig()
					cfg.Materialize = false
					cfg.Check = repro.CheckFull
					streamed, err := repro.Evaluate(k, m, s, cfg)
					if err != nil {
						t.Fatalf("streamed evaluate: %v", err)
					}
					cfg.Materialize = true
					cfg.Check = repro.CheckOff
					materialized, err := repro.Evaluate(k, m, s, cfg)
					if err != nil {
						t.Fatalf("materialized evaluate: %v", err)
					}
					if !reflect.DeepEqual(streamed.Sim, materialized.Sim) {
						t.Errorf("streamed and materialized results diverge:\nstreamed:     %+v\nmaterialized: %+v",
							streamed.Sim, materialized.Sim)
					}
				})
			}
		}
	}
}

// TestStreamingMatchesMaterializedMultiPass covers the trace.Repeat wrapper:
// warm-cache multi-pass runs must stream identically too.
func TestStreamingMatchesMaterializedMultiPass(t *testing.T) {
	k, err := workloads.ByName("galgel")
	if err != nil {
		t.Fatal(err)
	}
	m := topology.Dunnington()
	for _, s := range []repro.Scheme{repro.SchemeBase, repro.SchemeTopologyAware} {
		cfg := repro.DefaultConfig()
		cfg.Passes = 3
		cfg.Materialize = false
		streamed, err := repro.Evaluate(k, m, s, cfg)
		if err != nil {
			t.Fatalf("streamed evaluate: %v", err)
		}
		cfg.Materialize = true
		materialized, err := repro.Evaluate(k, m, s, cfg)
		if err != nil {
			t.Fatalf("materialized evaluate: %v", err)
		}
		if !reflect.DeepEqual(streamed.Sim, materialized.Sim) {
			t.Errorf("%v: multi-pass streamed and materialized results diverge", s)
		}
	}
}
