package repro_test

// Whole-pipeline property tests: random affine kernels are pushed through
// tagging, distribution, scheduling and simulation, and structural
// invariants are asserted — every iteration simulated exactly once, every
// dependence respected, deterministic outcomes, miss counts invariant
// under the scheme (total work conservation).

import (
	"fmt"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/poly"
	"repro/internal/schedule"
	"repro/internal/workloads"
)

// randomKernel builds a small random fully-parallel kernel: 1-D or 2-D
// nest, 2-4 read refs with random affine subscripts into 1-2 read arrays,
// one write ref with a distinct element per iteration (keeping it fully
// parallel by construction).
func randomKernel(rng *rand.Rand, id int) *repro.Kernel {
	dims := 1 + rng.Intn(2)
	var nest *poly.Nest
	var iterExtent []int64
	if dims == 1 {
		n := int64(256 + rng.Intn(1024))
		nest = poly.NewNest(poly.RectLoop("i", 0, n-1))
		iterExtent = []int64{n}
	} else {
		n1 := int64(16 + rng.Intn(48))
		n2 := int64(16 + rng.Intn(48))
		nest = poly.NewNest(poly.RectLoop("i", 0, n1-1), poly.RectLoop("j", 0, n2-1))
		iterExtent = []int64{n1, n2}
	}

	// Read array large enough for any subscript form below.
	var maxLin int64 = 1
	for _, e := range iterExtent {
		maxLin *= e
	}
	readA := poly.NewArray(fmt.Sprintf("R%d", id), 8*maxLin+64)
	writeA := poly.NewArray(fmt.Sprintf("W%d", id), maxLin)

	var refs []*poly.Ref
	nReads := 2 + rng.Intn(3)
	for r := 0; r < nReads; r++ {
		// Random affine subscript: c0 + c1*v1 (+ c2*v2), coefficients
		// in [0,4], offset in [0,63]; always non-negative and in range.
		e := poly.Constant(int64(rng.Intn(64)))
		for d := 0; d < dims; d++ {
			e = e.Add(poly.Var(d, dims).Scale(int64(rng.Intn(5))))
		}
		refs = append(refs, poly.NewRef(readA, poly.Read, e))
	}
	// Unique write target per iteration: linearized index.
	w := poly.Constant(0)
	stride := int64(1)
	for d := dims - 1; d >= 0; d-- {
		w = w.Add(poly.Var(d, dims).Scale(stride))
		stride *= iterExtent[d]
	}
	refs = append(refs, poly.NewRef(writeA, poly.Write, w))

	return &workloads.Kernel{
		Name:   fmt.Sprintf("rand%d", id),
		Source: "property",
		Arrays: []*poly.Array{readA, writeA},
		Nest:   nest,
		Refs:   refs,
	}
}

func TestPipelinePropertyRandomKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(2026))
	m := repro.Dunnington()
	for trial := 0; trial < 12; trial++ {
		k := randomKernel(rng, trial)
		cfg := repro.DefaultConfig()
		cfg.MaxGroups = 128
		for _, s := range []repro.Scheme{repro.SchemeBase, repro.SchemeTopologyAware, repro.SchemeCombined} {
			run, err := repro.Evaluate(k, m, s, cfg)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, s, err)
			}
			// Conservation: every iteration's references simulated once.
			if run.Sim.Accesses != uint64(k.Accesses()) {
				t.Fatalf("trial %d %v: %d accesses simulated, kernel has %d",
					trial, s, run.Sim.Accesses, k.Accesses())
			}
			// Mapping coverage for the tag-based schemes.
			if run.Mapping != nil {
				seen := make(map[string]bool)
				for _, gs := range run.Mapping.PerCore {
					for _, g := range gs {
						for _, p := range run.Mapping.Groups[g].Iters {
							key := p.String()
							if seen[key] {
								t.Fatalf("trial %d %v: iteration %v mapped twice", trial, s, p)
							}
							seen[key] = true
						}
					}
				}
				if len(seen) != k.Iterations() {
					t.Fatalf("trial %d %v: mapped %d of %d iterations", trial, s, len(seen), k.Iterations())
				}
			}
			if run.Schedule != nil {
				if err := schedule.Validate(run.Schedule, run.Mapping, nil); err != nil {
					t.Fatalf("trial %d %v: %v", trial, s, err)
				}
			}
		}
	}
}

func TestPipelinePropertyDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := repro.Nehalem()
	for trial := 0; trial < 4; trial++ {
		k := randomKernel(rng, 100+trial)
		cfg := repro.DefaultConfig()
		cfg.MaxGroups = 96
		a, err := repro.Evaluate(k, m, repro.SchemeCombined, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := repro.Evaluate(k, m, repro.SchemeCombined, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Sim.TotalCycles != b.Sim.TotalCycles || a.Sim.MemAccesses != b.Sim.MemAccesses {
			t.Fatalf("trial %d: nondeterministic (%d/%d vs %d/%d)", trial,
				a.Sim.TotalCycles, a.Sim.MemAccesses, b.Sim.TotalCycles, b.Sim.MemAccesses)
		}
	}
}

// TestPipelinePropertyRandomDependences: random kernels with a read of the
// write array (loop-carried deps) must still produce valid, dependence-
// respecting schedules in both §3.5.2 modes.
func TestPipelinePropertyRandomDependences(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(11))
	m := repro.Dunnington()
	for trial := 0; trial < 6; trial++ {
		n := int64(512 + rng.Intn(1024))
		dist := int64(1 + rng.Intn(300))
		a := poly.NewArray("A", n)
		nest := poly.NewNest(poly.RectLoop("j", dist, n-1))
		refs := []*poly.Ref{
			poly.NewRef(a, poly.Read, poly.Var(0, 1).AddConst(-dist)),
			poly.NewRef(a, poly.Write, poly.Var(0, 1)),
		}
		k := &workloads.Kernel{Name: fmt.Sprintf("dep%d", trial), Source: "property",
			Arrays: []*poly.Array{a}, Nest: nest, Refs: refs}
		for _, mode := range []repro.DepsMode{repro.DepsSync, repro.DepsConservative} {
			cfg := repro.DefaultConfig()
			cfg.Deps = mode
			cfg.MaxGroups = 64
			run, err := repro.Evaluate(k, m, repro.SchemeCombined, cfg)
			if err != nil {
				t.Fatalf("trial %d (dist %d) mode %v: %v", trial, dist, mode, err)
			}
			if run.Sim.Accesses != uint64(k.Accesses()) {
				t.Fatalf("trial %d mode %v: lost accesses", trial, mode)
			}
			if mode == repro.DepsConservative && run.Sim.Barriers != 0 {
				t.Fatalf("trial %d: conservative mode used %d barriers", trial, run.Sim.Barriers)
			}
		}
	}
}
